//! Property tests for the [`BoundedQueue`] invariants the daemon's
//! admission and drain guarantees rest on, hammered under real
//! concurrency and verified over a seeded corpus:
//!
//! * `try_push` never blocks; `Full`/`Closed` are the only rejections.
//! * `pop` reports `Closed` only when the queue is closed *and* empty —
//!   every admitted item is drained to exactly one consumer.
//! * `drain_up_to`/`drain_matching` never exceed their budget, never
//!   invent or drop items, and never reorder items from one producer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mtsr_serve::queue::{BoundedQueue, Pop, PushError};
use mtsr_tensor::Rng;

fn case_rng(test_id: u64, case: u64) -> Rng {
    Rng::seed_from(test_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case)
}

const POLL: Duration = Duration::from_millis(2);

/// Producers race a mid-stream `close`: afterwards, the set of items
/// consumers drained must equal exactly the set of successful pushes —
/// `Closed` never fires while admitted items remain, and nothing is
/// delivered twice.
#[test]
fn close_races_lose_no_admitted_items() {
    for case in 0..20u64 {
        let q = Arc::new(BoundedQueue::new(1 + (case as usize % 7)));
        let accepted = Arc::new(AtomicU64::new(0));
        let mut producers = Vec::new();
        for p in 0..3u64 {
            let q = Arc::clone(&q);
            let accepted = Arc::clone(&accepted);
            producers.push(std::thread::spawn(move || loop {
                let v = p * 1_000_000 + accepted.load(Ordering::SeqCst);
                match q.try_push(v) {
                    Ok(()) => {
                        accepted.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(PushError::Full) => std::thread::yield_now(),
                    Err(PushError::Closed) => return,
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut n = 0u64;
                loop {
                    match q.pop(POLL) {
                        Pop::Item(_) => n += 1,
                        Pop::Empty => continue,
                        Pop::Closed => return n,
                    }
                }
            }));
        }
        // Close at a case-dependent point mid-race.
        std::thread::sleep(Duration::from_millis(1 + case % 5));
        q.close();
        for p in producers {
            p.join().unwrap();
        }
        let drained: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(
            drained,
            accepted.load(Ordering::SeqCst),
            "case {case}: drained != admitted"
        );
        assert!(matches!(q.pop(POLL), Pop::Closed));
        assert_eq!(q.depth(), 0);
    }
}

/// `pop` must not report `Closed` while items remain, even when `close`
/// lands between a push and the pop — the exact race the server's
/// graceful drain depends on.
#[test]
fn closed_is_reported_only_after_drain() {
    for case in 0..200u64 {
        let q = Arc::new(BoundedQueue::new(8));
        let k = 1 + (case as usize % 8);
        for i in 0..k {
            q.try_push(i).unwrap();
        }
        let closer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.close())
        };
        let mut got = 0;
        loop {
            match q.pop(POLL) {
                Pop::Item(_) => got += 1,
                Pop::Empty => continue,
                Pop::Closed => break,
            }
        }
        closer.join().unwrap();
        assert_eq!(got, k, "case {case}: Closed fired with items remaining");
    }
}

/// Seeded single-threaded property: `drain_matching(n, pred)` takes at
/// most `n` items, takes only matching items in their queue order, and
/// leaves the non-taken items in their exact original relative order.
#[test]
fn drain_matching_respects_budget_predicate_and_order() {
    for case in 0..300u64 {
        let mut rng = case_rng(3, case);
        let len = rng.below(24);
        let q = BoundedQueue::new(24);
        // Items tagged (model, seq); seq is globally increasing.
        let mut pushed = Vec::new();
        for seq in 0..len {
            let model = rng.below(3) as u64;
            let item = (model, seq as u64);
            q.try_push(item).unwrap();
            pushed.push(item);
        }
        let want_model = rng.below(3) as u64;
        let budget = rng.below(8);
        let taken = q.drain_matching(budget, |&(m, _)| m == want_model);

        assert!(taken.len() <= budget, "case {case}: budget exceeded");
        assert!(
            taken.iter().all(|&(m, _)| m == want_model),
            "case {case}: predicate violated"
        );
        // Taken = the first `budget` matching items, in order.
        let expect_taken: Vec<_> = pushed
            .iter()
            .copied()
            .filter(|&(m, _)| m == want_model)
            .take(budget)
            .collect();
        assert_eq!(taken, expect_taken, "case {case}");
        // The remainder drains in original relative order.
        let mut rest = Vec::new();
        while let Pop::Item(it) = q.pop(Duration::ZERO) {
            rest.push(it);
        }
        let expect_rest: Vec<_> = pushed
            .iter()
            .copied()
            .filter(|it| !expect_taken.contains(it))
            .collect();
        assert_eq!(rest, expect_rest, "case {case}: survivors reordered");
    }
}

/// Under concurrent producers and mixed `pop`/`drain_up_to`/
/// `drain_matching` consumers, per-producer FIFO order is preserved and
/// every admitted item arrives exactly once.
#[test]
fn concurrent_drains_preserve_per_producer_fifo() {
    for case in 0..8u64 {
        let q = Arc::new(BoundedQueue::new(4));
        const PER: u64 = 200;
        let mut producers = Vec::new();
        for p in 0..3u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..PER {
                    loop {
                        match q.try_push((p, i)) {
                            Ok(()) => break,
                            Err(PushError::Full) => std::thread::yield_now(),
                            Err(PushError::Closed) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for c in 0..2u64 {
            let q = Arc::clone(&q);
            let seed = case * 16 + c;
            consumers.push(std::thread::spawn(move || {
                let mut rng = case_rng(4, seed);
                let mut got: Vec<(u64, u64)> = Vec::new();
                loop {
                    match q.pop(POLL) {
                        Pop::Item(it) => {
                            got.push(it);
                            // Mix in the batcher's top-up patterns.
                            match rng.below(3) {
                                0 => got.extend(q.drain_up_to(rng.below(4))),
                                1 => {
                                    let m = it.0;
                                    got.extend(q.drain_matching(rng.below(4), |&(p, _)| p == m));
                                }
                                _ => {}
                            }
                        }
                        Pop::Empty => continue,
                        Pop::Closed => return got,
                    }
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let batches: Vec<Vec<(u64, u64)>> =
            consumers.into_iter().map(|c| c.join().unwrap()).collect();
        let mut all: Vec<(u64, u64)> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        let want: Vec<(u64, u64)> = (0..3u64)
            .flat_map(|p| (0..PER).map(move |i| (p, i)))
            .collect();
        assert_eq!(all, want, "case {case}: items lost or duplicated");
        // Within one consumer's stream, each producer's items ascend:
        // no drain path reorders within a producer.
        for (ci, got) in batches.iter().enumerate() {
            let mut last = [None::<u64>; 3];
            for &(p, i) in got {
                if let Some(prev) = last[p as usize] {
                    assert!(
                        i > prev,
                        "case {case} consumer {ci}: producer {p} reordered ({prev} then {i})"
                    );
                }
                last[p as usize] = Some(i);
            }
        }
    }
}
