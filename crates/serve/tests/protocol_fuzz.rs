//! Seeded fuzz/property tests for the wire protocol and the
//! incremental frame assembler: arbitrary byte soup, truncations at
//! every boundary, bit flips and forged lengths must always produce a
//! clean verdict (a frame, a recoverable unknown-opcode, or a fatal
//! framing error) — never a panic, a hang, or unbounded buffering.
//!
//! Deterministic corpus via the repo-wide `case_rng` idiom: every case
//! derives from `(test_id, case)`, so failures replay exactly.

use mtsr_serve::protocol::{
    write_request, Assembled, FrameAssembler, FrameFatal, InferRequest, InferResponse, Opcode,
    ReloadRequest, ServerInfo, FRAME_HEADER, MAGIC_REQ, MAX_PAYLOAD,
};
use mtsr_tensor::Rng;

fn case_rng(test_id: u64, case: u64) -> Rng {
    Rng::seed_from(test_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case)
}

fn random_bytes(rng: &mut Rng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.below(256) as u8).collect()
}

/// A valid frame with a random opcode (possibly unknown) and payload.
fn random_frame(rng: &mut Rng) -> (u8, u64, Vec<u8>, Vec<u8>) {
    let op = match rng.below(7) {
        // The five real opcodes, plus two unknown flavours.
        v @ 0..=4 => 1 + v as u8,
        5 => 0u8,
        _ => 6 + rng.below(200) as u8,
    };
    let id = rng.next_u64();
    let payload_len = rng.below(64);
    let payload = random_bytes(rng, payload_len);
    let mut frame = Vec::new();
    // write_request validates opcodes, so splice the byte in afterwards.
    write_request(&mut frame, Opcode::Status, id, &payload).unwrap();
    frame[4] = op;
    (op, id, payload, frame)
}

/// Feeds `bytes` to an assembler in random chunks, collecting verdicts.
/// Returns (frames-or-unknowns, fatal error if any).
fn run_assembler(rng: &mut Rng, bytes: &[u8]) -> (Vec<Assembled>, Option<FrameFatal>) {
    let mut asm = FrameAssembler::new();
    let mut out = Vec::new();
    let mut off = 0;
    while off < bytes.len() {
        let chunk = (1 + rng.below(97)).min(bytes.len() - off);
        asm.push(&bytes[off..off + chunk]);
        off += chunk;
        loop {
            match asm.next() {
                Ok(Some(a)) => out.push(a),
                Ok(None) => break,
                Err(fatal) => return (out, Some(fatal)),
            }
        }
    }
    (out, None)
}

/// Random byte soup: the assembler must terminate with a clean verdict
/// on every prefix and never buffer more than the declared frame needs.
#[test]
fn byte_soup_never_panics_or_overbuffers() {
    for case in 0..400u64 {
        let mut rng = case_rng(1, case);
        let len = 1 + rng.below(4096);
        let soup = random_bytes(&mut rng, len);
        let mut asm = FrameAssembler::new();
        let mut fatal = false;
        for chunk in soup.chunks(1 + rng.below(63)) {
            if fatal {
                break;
            }
            asm.push(chunk);
            loop {
                match asm.next() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        fatal = true;
                        break;
                    }
                }
            }
            // Un-consumed buffering is bounded by one full frame.
            assert!(asm.buffered() <= FRAME_HEADER + MAX_PAYLOAD as usize);
        }
    }
}

/// Streams of valid frames survive arbitrary re-chunking: every frame
/// comes back out with its opcode, id and payload intact, unknown
/// opcodes flagged but never desynchronizing the stream.
#[test]
fn valid_streams_reassemble_exactly_under_any_chunking() {
    for case in 0..200u64 {
        let mut rng = case_rng(2, case);
        let n = 1 + rng.below(8);
        let mut wire = Vec::new();
        let mut sent = Vec::new();
        for _ in 0..n {
            let (op, id, payload, frame) = random_frame(&mut rng);
            wire.extend_from_slice(&frame);
            sent.push((op, id, payload));
        }
        let (got, fatal) = run_assembler(&mut rng, &wire);
        assert!(fatal.is_none(), "case {case}: spurious fatal {fatal:?}");
        assert_eq!(got.len(), sent.len(), "case {case}");
        for (assembled, (op, id, payload)) in got.iter().zip(&sent) {
            match assembled {
                Assembled::Frame(req) => {
                    assert_eq!(req.op.to_u8(), *op, "case {case}");
                    assert_eq!(req.id, *id, "case {case}");
                    assert_eq!(&req.payload, payload, "case {case}");
                }
                Assembled::UnknownOpcode {
                    op: got_op,
                    id: got_id,
                } => {
                    assert!(Opcode::from_u8(*op).is_err(), "case {case}");
                    assert_eq!((got_op, got_id), (op, id), "case {case}");
                }
            }
        }
    }
}

/// Truncating a valid frame at every possible byte boundary must yield
/// "need more bytes" — never a partial frame, never an error for a
/// prefix that could still grow into the real frame.
#[test]
fn every_truncation_waits_for_more_bytes() {
    for case in 0..40u64 {
        let mut rng = case_rng(3, case);
        let (_, _, _, frame) = random_frame(&mut rng);
        for cut in 0..frame.len() {
            let mut asm = FrameAssembler::new();
            asm.push(&frame[..cut]);
            match asm.next() {
                Ok(None) => {}
                other => panic!("case {case} cut {cut}: unexpected {other:?}"),
            }
            // Completing the frame still works after the partial parse.
            asm.push(&frame[cut..]);
            match asm.next() {
                Ok(Some(_)) => {}
                other => panic!("case {case} cut {cut}: completion failed {other:?}"),
            }
        }
    }
}

/// Single-bit flips anywhere in a frame: the assembler must terminate
/// with a clean verdict, and flips inside the magic must always be
/// fatal `BadMagic` with nothing admitted.
#[test]
fn bit_flips_get_clean_verdicts() {
    for case in 0..300u64 {
        let mut rng = case_rng(4, case);
        let (_, _, _, mut frame) = random_frame(&mut rng);
        let bit = rng.below(frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        let magic_flip = bit / 8 < 4;
        let (got, fatal) = run_assembler(&mut rng, &frame);
        if magic_flip {
            assert!(got.is_empty(), "case {case}: admitted under broken magic");
            match fatal {
                Some(FrameFatal::BadMagic(m)) => assert_ne!(m, MAGIC_REQ, "case {case}"),
                other => panic!("case {case}: expected BadMagic, got {other:?}"),
            }
        }
        // Flips elsewhere may mutate the opcode, id, length or payload;
        // all are represented by some clean verdict (frame, unknown
        // opcode, oversize, or waiting for the longer declared length).
    }
}

/// The forged-length guard, exactly at the boundary: a declared payload
/// of `MAX_PAYLOAD` is legal (the assembler waits for it); one byte
/// more is rejected before anything is buffered.
#[test]
fn forged_length_guard_boundary_is_exact() {
    let header = |len: u32| {
        let mut h = Vec::new();
        write_request(&mut h, Opcode::Infer, 42, &[]).unwrap();
        h[13..17].copy_from_slice(&len.to_le_bytes());
        h
    };

    let mut asm = FrameAssembler::new();
    asm.push(&header(MAX_PAYLOAD));
    assert!(
        matches!(asm.next(), Ok(None)),
        "exactly MAX_PAYLOAD must be accepted"
    );

    let mut asm = FrameAssembler::new();
    asm.push(&header(MAX_PAYLOAD + 1));
    match asm.next() {
        Err(FrameFatal::Oversized { id: 42, len }) => assert_eq!(len, MAX_PAYLOAD + 1),
        other => panic!("MAX_PAYLOAD+1 must be fatal, got {other:?}"),
    }
}

/// Payload codecs under random input: decode never panics, and every
/// successful decode re-encodes to bytes that decode identically
/// (round-trip stability even for inputs we did not produce).
#[test]
fn payload_codecs_survive_random_input() {
    for case in 0..400u64 {
        let mut rng = case_rng(5, case);
        let len = rng.below(256);
        let bytes = random_bytes(&mut rng, len);
        if let Ok(req) = InferRequest::decode(&bytes) {
            let again = InferRequest::decode(&req.encode()).unwrap();
            assert_eq!(
                (again.model, again.s, again.h, again.w),
                (req.model, req.s, req.h, req.w)
            );
            assert_eq!(again.data.len(), req.data.len());
        }
        if let Ok(resp) = InferResponse::decode(&bytes) {
            let again = InferResponse::decode(&resp.encode()).unwrap();
            assert_eq!(
                (again.model, again.generation),
                (resp.model, resp.generation)
            );
        }
        if let Ok(rel) = ReloadRequest::decode(&bytes) {
            let again = ReloadRequest::decode(&rel.encode()).unwrap();
            assert_eq!((again.model, again.source), (rel.model, rel.source));
        }
        if let Ok(info) = ServerInfo::decode(&bytes) {
            let again = ServerInfo::decode(&info.encode()).unwrap();
            assert_eq!(again.model, info.model);
            assert_eq!(again.generation, info.generation);
        }
    }
}
