//! Zero-downtime hot reload, proven by bit-identity per plan
//! generation: while a client streams INFER traffic, plans are swapped
//! repeatedly (over the wire, programmatically, and via SIGHUP), and
//! every single response must be bit-identical to offline inference
//! under exactly the plan its stamped generation names — never a blend,
//! never a torn plan, never a dropped request.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mtsr_serve::{
    signals, InferOutcome, InferRequest, ModelSpec, Planner, ServeClient, ServeConfig, Server,
};
use mtsr_tensor::Rng;
use zipnet_core::{plan_zipnet, FusePolicy, InferExec, InferPlan, ZipNet, ZipNetConfig};

const S: usize = 2;
const BATCH: usize = 2;

/// SIGHUP state is process-global; serialize the tests that run servers
/// so one test's raised signal cannot trigger reloads in another's.
static HUP_LOCK: Mutex<()> = Mutex::new(());

fn tiny_plan(seed: u64, batch: usize) -> Arc<InferPlan> {
    let mut gen = ZipNet::new(&ZipNetConfig::tiny(4, S), &mut Rng::seed_from(seed)).unwrap();
    let exec = plan_zipnet(&mut gen, FusePolicy::Exact, batch, 3, 3).unwrap();
    Arc::clone(exec.plan())
}

fn window(seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from(seed);
    (0..S * 9).map(|_| rng.next_f32()).collect()
}

fn request(seed: u64) -> InferRequest {
    InferRequest {
        model: 0,
        deadline_ms: 2000,
        s: S as u32,
        h: 3,
        w: 3,
        data: window(seed),
    }
}

/// Offline reference: run one window through lane 0 of a fresh executor
/// forked from `plan`. Per-sample batched kernels make lane 0
/// independent of the other lanes' contents.
fn offline(plan: &Arc<InferPlan>, win: &[f32]) -> Vec<f32> {
    let mut exec = InferExec::from_plan(Arc::clone(plan));
    let in_len: usize = exec.input_dims().iter().product();
    let out_len: usize = exec.output_dims().iter().product();
    let crop_len = in_len / BATCH;
    let win_len = out_len / BATCH;
    let mut input = vec![0.0f32; in_len];
    let mut output = vec![0.0f32; out_len];
    input[..crop_len].copy_from_slice(win);
    exec.run_into(&input, &mut output).unwrap();
    output[..win_len].to_vec()
}

fn named_planner(plans: HashMap<String, Arc<InferPlan>>) -> Planner {
    Arc::new(move |_model, source| {
        plans.get(source).cloned().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no checkpoint named `{source}`"),
            )
        })
    })
}

/// The headline test: swap plans A <-> B six times under continuous
/// traffic, then verify every response against offline inference under
/// the plan its generation names, bit for bit.
#[test]
fn responses_stay_bit_identical_per_generation_across_reloads() {
    let _guard = HUP_LOCK.lock().unwrap();
    let plan_a = tiny_plan(1, BATCH);
    let plan_b = tiny_plan(2, BATCH);
    let planner = named_planner(HashMap::from([
        ("ckpt-a".to_string(), Arc::clone(&plan_a)),
        ("ckpt-b".to_string(), Arc::clone(&plan_b)),
    ]));
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 8,
        linger: Duration::ZERO,
        ..ServeConfig::default()
    };
    let handle = Server::start(
        &cfg,
        vec![ModelSpec {
            name: "up4".into(),
            source: "ckpt-a".into(),
            plan: Arc::clone(&plan_a),
        }],
        Some(planner),
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let addr = handle.local_addr();
    let traffic = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).unwrap();
            let mut got: Vec<(u64, u32, Vec<f32>)> = Vec::new();
            let mut seed = 1000u64;
            while !stop.load(Ordering::SeqCst) {
                match client.infer(&request(seed)).unwrap() {
                    InferOutcome::Ok(resp) => got.push((seed, resp.generation, resp.data)),
                    // Explicit shedding is allowed; silent drops are not.
                    InferOutcome::Busy | InferOutcome::Timeout => {}
                    other => panic!("seed {seed}: unexpected {other:?}"),
                }
                seed += 1;
            }
            got
        })
    };

    // generation -> source that planned it; generation 0 is the start.
    let mut gen_source = vec!["ckpt-a"];
    let mut ctl = ServeClient::connect(addr).unwrap();
    for i in 0..6u32 {
        let src = if i % 2 == 0 { "ckpt-b" } else { "ckpt-a" };
        let generation = ctl.reload(0, src).unwrap();
        assert_eq!(generation, i + 1, "reloads are serialized per model");
        gen_source.push(src);
        std::thread::sleep(Duration::from_millis(30));
    }
    // Empty source re-plans the recorded checkpoint (last swap's).
    let generation = ctl.reload(0, "").unwrap();
    assert_eq!(generation, 7);
    gen_source.push(gen_source[6]);
    std::thread::sleep(Duration::from_millis(30));

    stop.store(true, Ordering::SeqCst);
    let got = traffic.join().unwrap();
    ctl.shutdown().unwrap();
    handle.join();

    assert!(!got.is_empty(), "traffic thread served nothing");
    let seen: std::collections::BTreeSet<u32> = got.iter().map(|g| g.1).collect();
    assert!(
        seen.len() >= 3,
        "expected responses spanning several generations, saw {seen:?}"
    );
    for (seed, generation, data) in &got {
        assert!(
            (*generation as usize) < gen_source.len(),
            "response stamped unknown generation {generation}"
        );
        let plan = match gen_source[*generation as usize] {
            "ckpt-a" => &plan_a,
            _ => &plan_b,
        };
        let want = offline(plan, &window(*seed));
        assert_eq!(data.len(), want.len());
        for (i, (a, b)) in data.iter().zip(&want).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "seed {seed} generation {generation} cell {i}: served {a} != offline {b}"
            );
        }
    }
}

/// Programmatic swaps via the handle obey the same rules as wire
/// reloads: generation bumps, geometry changes are refused, and a
/// failed swap leaves the old plan and generation untouched.
#[test]
fn swap_model_bumps_generation_and_rejects_geometry_changes() {
    let _guard = HUP_LOCK.lock().unwrap();
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 4,
        linger: Duration::ZERO,
        ..ServeConfig::default()
    };
    let handle = Server::start(
        &cfg,
        vec![ModelSpec {
            name: "up4".into(),
            source: String::new(),
            plan: tiny_plan(1, BATCH),
        }],
        None,
    )
    .unwrap();
    assert_eq!(handle.model_generation(0), Some(0));

    let g = handle.swap_model(0, tiny_plan(2, BATCH), None).unwrap();
    assert_eq!(g, 1);
    assert_eq!(handle.model_generation(0), Some(1));

    // A different batch lane count is a geometry change: refused.
    let err = handle
        .swap_model(0, tiny_plan(3, BATCH * 2), None)
        .unwrap_err();
    assert!(err.to_string().contains("changes geometry"), "{err}");
    assert_eq!(handle.model_generation(0), Some(1), "no torn swap");

    // The swapped plan serves immediately and stamps its generation.
    let mut client = ServeClient::connect(handle.local_addr()).unwrap();
    match client.infer(&request(42)).unwrap() {
        InferOutcome::Ok(resp) => assert_eq!(resp.generation, 1),
        other => panic!("unexpected {other:?}"),
    }
    // Without a planner, wire reloads are refused outright.
    let err = client.reload(0, "anything").unwrap_err();
    assert!(err.to_string().contains("no reload planner"), "{err}");

    client.shutdown().unwrap();
    handle.join();
}

/// SIGHUP re-plans every model from its recorded source — the
/// operational "rotate checkpoints in place" path. A failing source
/// counts as `reloads_failed` and leaves the serving plan untouched.
#[test]
fn sighup_reloads_all_models_from_recorded_sources() {
    let _guard = HUP_LOCK.lock().unwrap();
    let plan_a = tiny_plan(1, BATCH);
    let planner = named_planner(HashMap::from([("ckpt-a".to_string(), Arc::clone(&plan_a))]));
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 4,
        linger: Duration::ZERO,
        ..ServeConfig::default()
    };
    let handle = Server::start(
        &cfg,
        vec![
            ModelSpec {
                name: "good".into(),
                source: "ckpt-a".into(),
                plan: Arc::clone(&plan_a),
            },
            ModelSpec {
                name: "bad".into(),
                source: "ckpt-missing".into(),
                plan: tiny_plan(9, BATCH),
            },
        ],
        Some(planner),
    )
    .unwrap();

    signals::raise_hup();
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.model_generation(0) != Some(1) {
        assert!(Instant::now() < deadline, "SIGHUP reload never landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The model with a dead source keeps serving its old plan.
    assert_eq!(handle.model_generation(1), Some(0));

    let mut client = ServeClient::connect(handle.local_addr()).unwrap();
    let mut status = String::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !status.contains("reloads_failed: 1") {
        assert!(
            Instant::now() < deadline,
            "reload failure not counted:\n{status}"
        );
        status = client.status().unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(status.contains("reloads_ok: 1"), "{status}");

    match client.infer(&request(7)).unwrap() {
        InferOutcome::Ok(resp) => {
            assert_eq!(resp.generation, 1);
            let want = offline(&plan_a, &window(7));
            for (a, b) in resp.data.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        other => panic!("unexpected {other:?}"),
    }
    client.shutdown().unwrap();
    handle.join();
}
