//! Live accuracy tracking: pairing served predictions with
//! later-arriving ground truth and deciding when a model has drifted.
//!
//! Mobile-traffic ground truth is not available at serving time — the
//! fine-grained frame a prediction approximates is only measured later
//! (if at all, e.g. from periodic full-fidelity sweeps). Clients submit
//! it retroactively over the wire with a `TRUTH` frame that reuses the
//! original `INFER` request's id. The [`DriftMonitor`] keeps a bounded
//! buffer of recent predictions so the pairing works without unbounded
//! memory, scores each pair with a range-normalised RMSE, and maintains
//! a rolling mean of those scores — the **drift gauge** reported in
//! STATUS and compared against the adaptation trigger threshold.
//!
//! Matched pairs double as the **fine-tune corpus**: the daemon buffers
//! the `(coarse input, fine truth)` pairs and hands them to the online
//! fine-tune driver when the gauge trips, holding out the newest few as
//! the promotion gate's evaluation slice.

use std::collections::VecDeque;
use std::io;
use std::sync::Arc;

use zipnet_core::{AdaptPair, InferExec, InferPlan};

/// Most recent predictions retained while their ground truth is still in
/// flight. Beyond this, the oldest unmatched prediction is dropped (its
/// late truth will count as unmatched).
const PRED_CAP: usize = 1024;

/// Error score for one `(prediction, truth)` window pair: RMSE
/// normalised by the truth's value range (max − min). Served windows are
/// z-score normalised, so their mean is near zero and the classic
/// mean-normalised NRMSE is undefined; the range-normalised form stays
/// meaningful. A flat truth window (range ≈ 0) falls back to plain RMSE.
pub fn window_nrmse(pred: &[f32], truth: &[f32]) -> f32 {
    debug_assert_eq!(pred.len(), truth.len());
    if truth.is_empty() {
        return 0.0;
    }
    let mut se = 0.0f64;
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for (&p, &t) in pred.iter().zip(truth) {
        se += f64::from(p - t) * f64::from(p - t);
        lo = lo.min(t);
        hi = hi.max(t);
    }
    let rmse = (se / truth.len() as f64).sqrt() as f32;
    let range = hi - lo;
    if range > 1e-6 {
        rmse / range
    } else {
        rmse
    }
}

/// What one `TRUTH` submission did to the monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TruthOutcome {
    /// No buffered prediction carries this id (never seen, already
    /// matched, or evicted): nothing was scored.
    Unmatched,
    /// A prediction matched but the truth window has the wrong element
    /// count — the submission is malformed.
    BadLength {
        /// Elements in the submitted truth window.
        have: usize,
        /// Elements the matched prediction has.
        want: usize,
    },
    /// The pair was scored and buffered for adaptation.
    Scored {
        /// This pair's range-normalised RMSE.
        window_nrmse: f32,
        /// The rolling drift gauge after folding this pair in.
        rolling: f32,
    },
}

/// Per-model drift state: a bounded id-addressed prediction buffer, the
/// rolling NRMSE gauge, and the buffered fine-tune pairs. One lives in
/// every registry slot behind a `Mutex`; all methods are O(buffered).
#[derive(Debug)]
pub struct DriftMonitor {
    window: usize,
    min_pairs: usize,
    holdout: usize,
    /// Last `window` pair scores (the gauge's support).
    scores: VecDeque<f32>,
    /// `(request id, coarse input, served prediction)` awaiting truth.
    preds: VecDeque<(u64, Vec<f32>, Vec<f32>)>,
    /// Matched `(input, truth)` pairs, oldest first.
    pairs: VecDeque<AdaptPair>,
}

impl DriftMonitor {
    /// A monitor with a `window`-pair rolling gauge that accumulates up
    /// to `min_pairs + holdout` fine-tune pairs.
    pub fn new(window: usize, min_pairs: usize, holdout: usize) -> DriftMonitor {
        DriftMonitor {
            window: window.max(1),
            min_pairs: min_pairs.max(1),
            holdout,
            scores: VecDeque::new(),
            preds: VecDeque::new(),
            pairs: VecDeque::new(),
        }
    }

    /// Re-parameterises the monitor (server startup), clearing all state.
    pub fn configure(&mut self, window: usize, min_pairs: usize, holdout: usize) {
        *self = DriftMonitor::new(window, min_pairs, holdout);
    }

    /// Records a served prediction so a later `TRUTH` frame can claim it
    /// by id. A repeated id replaces the older entry (latest wins).
    pub fn record_prediction(&mut self, id: u64, input: &[f32], prediction: &[f32]) {
        if let Some(slot) = self.preds.iter_mut().rev().find(|p| p.0 == id) {
            slot.1 = input.to_vec();
            slot.2 = prediction.to_vec();
            return;
        }
        if self.preds.len() == PRED_CAP {
            self.preds.pop_front();
        }
        self.preds
            .push_back((id, input.to_vec(), prediction.to_vec()));
    }

    /// Matches a ground-truth window against the buffered prediction with
    /// the same id, scores it, and (on success) buffers the adaptation
    /// pair. The matched prediction is consumed either way.
    pub fn observe_truth(&mut self, id: u64, truth: &[f32]) -> TruthOutcome {
        let Some(idx) = self.preds.iter().rposition(|p| p.0 == id) else {
            return TruthOutcome::Unmatched;
        };
        let (_, input, pred) = self.preds.remove(idx).expect("rposition is in range");
        if truth.len() != pred.len() {
            return TruthOutcome::BadLength {
                have: truth.len(),
                want: pred.len(),
            };
        }
        let score = window_nrmse(&pred, truth);
        if self.scores.len() == self.window {
            self.scores.pop_front();
        }
        self.scores.push_back(score);
        if self.pairs.len() == self.min_pairs + self.holdout {
            self.pairs.pop_front();
        }
        self.pairs.push_back(AdaptPair {
            input,
            target: truth.to_vec(),
        });
        TruthOutcome::Scored {
            window_nrmse: score,
            rolling: self.rolling(),
        }
    }

    /// The rolling drift gauge: mean pair score over the last `window`
    /// matched pairs (0 when nothing has been matched yet).
    pub fn rolling(&self) -> f32 {
        if self.scores.is_empty() {
            return 0.0;
        }
        (self.scores.iter().map(|&s| f64::from(s)).sum::<f64>() / self.scores.len() as f64) as f32
    }

    /// Matched pairs currently scored by the gauge.
    pub fn samples(&self) -> usize {
        self.scores.len()
    }

    /// Buffered fine-tune pairs.
    pub fn pairs_len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the gauge justifies kicking off a fine-tune: a full
    /// window of evidence, enough buffered pairs to both tune and gate,
    /// and a rolling score past `threshold`.
    pub fn should_trigger(&self, threshold: f32) -> bool {
        self.scores.len() >= self.window
            && self.pairs.len() >= self.min_pairs + self.holdout
            && self.rolling() > threshold
    }

    /// Drains the buffered pairs into `(train, holdout)` — the newest
    /// `holdout` pairs form the gate's evaluation slice (closest to the
    /// current regime), everything older is the fine-tune corpus.
    pub fn take_pairs(&mut self) -> (Vec<AdaptPair>, Vec<AdaptPair>) {
        let mut train: Vec<AdaptPair> = self.pairs.drain(..).collect();
        let held = train.split_off(train.len().saturating_sub(self.holdout));
        (train, held)
    }

    /// Clears everything — after a successful promotion the old model's
    /// scores and pairs describe weights that are no longer serving.
    pub fn reset(&mut self) {
        self.scores.clear();
        self.preds.clear();
        self.pairs.clear();
    }

    /// Clears only the gauge (rejection cooldown): the next trigger
    /// needs a whole fresh window of bad scores, but matched pairs keep
    /// accumulating so the retry has data.
    pub fn reset_gauge(&mut self) {
        self.scores.clear();
    }
}

/// Mean [`window_nrmse`] of `plan` over `pairs`, each run through lane 0
/// of a throwaway executor — the promotion gate's scoring function, also
/// usable as an offline evaluation of any candidate plan. Runs on the
/// adaptation thread, never the event loop.
pub fn holdout_nrmse(plan: &Arc<InferPlan>, pairs: &[AdaptPair]) -> io::Result<f32> {
    if pairs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "holdout evaluation needs at least one pair",
        ));
    }
    let mut exec = InferExec::from_plan(Arc::clone(plan));
    let in_len: usize = exec.input_dims().iter().product();
    let out_len: usize = exec.output_dims().iter().product();
    let batch = exec.input_dims()[0];
    let (crop_len, win_len) = (in_len / batch, out_len / batch);
    let mut input = vec![0.0f32; in_len];
    let mut output = vec![0.0f32; out_len];
    let mut total = 0.0f64;
    for pair in pairs {
        if pair.input.len() != crop_len || pair.target.len() != win_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "holdout pair geometry ({} in / {} out) does not match the plan \
                     ({crop_len} in / {win_len} out)",
                    pair.input.len(),
                    pair.target.len()
                ),
            ));
        }
        input[..crop_len].copy_from_slice(&pair.input);
        exec.run_into(&input, &mut output)
            .map_err(|e| io::Error::other(format!("holdout inference failed: {e}")))?;
        total += f64::from(window_nrmse(&output[..win_len], &pair.target));
    }
    Ok((total / pairs.len() as f64) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_nrmse_is_range_normalised_with_rmse_fallback() {
        // Truth range 0..=3, per-cell error 1 → RMSE 1, NRMSE 1/3.
        let truth = [0.0, 1.0, 2.0, 3.0];
        let pred = [1.0, 2.0, 3.0, 4.0];
        let s = window_nrmse(&pred, &truth);
        assert!((s - 1.0 / 3.0).abs() < 1e-6, "{s}");
        // Flat truth: falls back to plain RMSE instead of dividing by ~0.
        let flat = [2.0; 4];
        let s = window_nrmse(&pred, &flat);
        let want = ((1.0f32 + 0.0 + 1.0 + 4.0) / 4.0).sqrt();
        assert!((s - want).abs() < 1e-6, "{s}");
        assert_eq!(window_nrmse(&[], &[]), 0.0);
    }

    #[test]
    fn truth_matches_by_id_and_scores_the_gauge() {
        let mut m = DriftMonitor::new(2, 2, 1);
        m.record_prediction(7, &[0.5; 4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.observe_truth(99, &[0.0; 4]), TruthOutcome::Unmatched);
        assert_eq!(
            m.observe_truth(7, &[0.0; 3]),
            TruthOutcome::BadLength { have: 3, want: 4 }
        );
        // BadLength consumed the prediction: the id no longer matches.
        assert_eq!(m.observe_truth(7, &[0.0; 4]), TruthOutcome::Unmatched);

        m.record_prediction(8, &[0.5; 4], &[1.0, 2.0, 3.0, 4.0]);
        match m.observe_truth(8, &[0.0, 1.0, 2.0, 3.0]) {
            TruthOutcome::Scored {
                window_nrmse: w,
                rolling,
            } => {
                assert!((w - 1.0 / 3.0).abs() < 1e-6);
                assert_eq!(rolling, w, "single sample: rolling == window score");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!((m.samples(), m.pairs_len()), (1, 1));
    }

    #[test]
    fn gauge_rolls_and_trigger_requires_full_evidence() {
        let mut m = DriftMonitor::new(2, 2, 1);
        for id in 0..4u64 {
            m.record_prediction(id, &[0.0; 2], &[1.0, 2.0]);
        }
        m.observe_truth(0, &[1.0, 2.0]); // perfect: score 0
        assert!(!m.should_trigger(0.1), "one sample is not a full window");
        m.observe_truth(1, &[0.0, 4.0]); // bad
        m.observe_truth(2, &[0.0, 4.0]); // bad — evicts the perfect score
        assert_eq!(m.samples(), 2, "gauge window is bounded");
        assert!(m.rolling() > 0.3);
        // Needs min_pairs + holdout = 3 buffered pairs: only 3 matched so
        // far, trigger is now armed.
        assert_eq!(m.pairs_len(), 3);
        assert!(m.should_trigger(0.3));
        assert!(!m.should_trigger(10.0), "threshold is respected");

        let (train, held) = m.take_pairs();
        assert_eq!((train.len(), held.len()), (2, 1));
        // The holdout is the *newest* pair (truth [0, 4] from id 2).
        assert_eq!(held[0].target, vec![0.0, 4.0]);
        assert_eq!(train[0].target, vec![1.0, 2.0]);
        assert_eq!(m.pairs_len(), 0, "take_pairs drains the buffer");

        m.observe_truth(3, &[0.0, 4.0]);
        assert_eq!(m.samples(), 2);
        m.reset_gauge();
        assert_eq!((m.samples(), m.pairs_len()), (0, 1), "gauge-only reset");
        m.reset();
        assert_eq!((m.samples(), m.pairs_len()), (0, 0));
    }

    #[test]
    fn prediction_buffer_is_bounded_and_latest_id_wins() {
        let mut m = DriftMonitor::new(4, 4, 0);
        for id in 0..(PRED_CAP as u64 + 8) {
            m.record_prediction(id, &[0.0], &[1.0]);
        }
        assert_eq!(m.preds.len(), PRED_CAP);
        assert_eq!(
            m.observe_truth(0, &[1.0]),
            TruthOutcome::Unmatched,
            "oldest prediction was evicted"
        );
        // Re-recording an id replaces the stored prediction.
        m.record_prediction(500, &[0.0], &[9.0]);
        match m.observe_truth(500, &[9.0]) {
            TruthOutcome::Scored {
                window_nrmse: w, ..
            } => assert_eq!(w, 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }
}
