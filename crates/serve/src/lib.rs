//! `mtsr-serve`: a zero-dependency concurrent inference daemon for
//! compiled ZipNet plans, plus the matching protocol client.
//!
//! The crate splits into three layers:
//!
//! * [`protocol`] — the length-prefixed binary wire format (framing,
//!   opcodes, payload codecs). Pure functions over `Read`/`Write`.
//! * [`queue`] — the bounded MPMC admission queue whose contract
//!   (`try_push` never blocks, `Closed` only after drain) encodes the
//!   daemon's backpressure and graceful-shutdown guarantees.
//! * [`server`] / [`client`] — the daemon (accept loop, per-connection
//!   reader/writer threads, dynamic batchers over forked executors) and
//!   the client (single-shot calls plus a pipelined [`RemotePredictor`]
//!   that reconstructs full frames bit-identically to a local
//!   [`zipnet_core::pipeline::InferSession`]).
//!
//! Everything is `std`-only: TCP via `std::net`, threads and channels
//! via `std::sync`, signals via the libc `signal(2)` std already links.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{InferOutcome, RemotePredictor, ServeClient};
pub use protocol::{InferRequest, InferResponse, Opcode, RespStatus, ServerInfo};
pub use server::{signals, ServeConfig, Server, ServerHandle};
