//! `mtsr-serve`: a zero-dependency concurrent inference daemon for
//! compiled ZipNet plans, plus the matching protocol client.
//!
//! The crate splits into six layers:
//!
//! * [`protocol`] — the length-prefixed binary wire format (framing,
//!   opcodes, payload codecs) plus the incremental [`FrameAssembler`]
//!   the event loop parses non-blocking byte streams with.
//! * [`queue`] — the bounded MPMC admission queue whose contract
//!   (`try_push` never blocks, `Closed` only after drain) encodes the
//!   daemon's backpressure and graceful-shutdown guarantees.
//! * [`poller`] — the readiness-polling abstraction (epoll on Linux,
//!   `poll(2)` on other unix) the event loop multiplexes thousands of
//!   connections on, with a fixed thread count.
//! * `registry` *(internal)* — the multi-model tenant table: named
//!   slots of atomically swappable plans with generation counters, the
//!   substrate of hot reload. Its public faces are [`ModelSpec`] and
//!   [`Planner`].
//! * [`drift`] — live-accuracy tracking: `TRUTH` frames pair
//!   later-arriving ground truth with served predictions, a rolling
//!   NRMSE gauge per model trips a background fine-tune ([`Tuner`]),
//!   and the candidate is hot-promoted through an acceptance gate.
//! * [`server`] / [`client`] — the daemon (event-loop front-end, shared
//!   batcher pool over per-model executors, `RELOAD`/`SIGHUP` hot
//!   reload) and the client (single-shot calls plus a pipelined
//!   [`RemotePredictor`] that reconstructs full frames bit-identically
//!   to a local [`zipnet_core::pipeline::InferSession`]).
//!
//! Everything is `std`-only: TCP via `std::net`, threads via
//! `std::sync`, epoll/poll/signals via the libc std already links.

#![warn(missing_docs)]

pub mod client;
pub mod drift;
pub mod poller;
pub mod protocol;
pub mod queue;
mod registry;
pub mod server;

pub use client::{InferOutcome, RemotePredictor, ServeClient};
pub use drift::{holdout_nrmse, window_nrmse, DriftMonitor, TruthOutcome};
pub use protocol::{
    Assembled, FrameAssembler, FrameFatal, InferRequest, InferResponse, Opcode, ReloadRequest,
    RespStatus, ServerInfo, TruthAck, TruthRequest,
};
pub use registry::{ModelSpec, Planner};
pub use server::{signals, AdaptConfig, ServeConfig, Server, ServerHandle, TunedModel, Tuner};
pub use zipnet_core::AdaptPair;
