//! A bounded multi-producer multi-consumer queue with explicit
//! backpressure, built on `Mutex` + `Condvar` (std only).
//!
//! The serving daemon's admission policy lives in this type's contract:
//!
//! * [`BoundedQueue::try_push`] never blocks. A full queue returns
//!   [`PushError::Full`] immediately so the connection thread can reply
//!   `BUSY` — load is shed at admission time, never by silent drop or
//!   unbounded buffering.
//! * [`BoundedQueue::pop`] blocks (with a poll timeout) and only reports
//!   [`Pop::Closed`] once the queue is *both* closed and empty. That
//!   asymmetry is the graceful-drain guarantee: after [`close`] every
//!   already-admitted item is still handed to a consumer.
//!
//! [`close`]: BoundedQueue::close

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why [`BoundedQueue::try_push`] rejected an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed load (`BUSY`).
    Full,
    /// The queue has been closed; the caller should report draining.
    Closed,
}

/// Result of a single [`BoundedQueue::pop`] poll.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The poll interval elapsed with nothing available (queue still open
    /// or closed-but-racing); poll again.
    Empty,
    /// The queue is closed *and* empty — no item will ever arrive again.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue. See the module docs for the admission and
/// drain contract.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `cap` items (`cap >= 1`).
    pub fn new(cap: usize) -> BoundedQueue<T> {
        assert!(cap >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Non-blocking admission; see [`PushError`] for the rejection cases.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut g = self.inner.lock().expect("queue mutex poisoned");
        if g.closed {
            return Err(PushError::Closed);
        }
        if g.items.len() >= self.cap {
            return Err(PushError::Full);
        }
        g.items.push_back(item);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues one item, waiting up to `poll` for one to arrive. Returns
    /// [`Pop::Closed`] only once the queue is closed *and* drained.
    pub fn pop(&self, poll: Duration) -> Pop<T> {
        let mut g = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if let Some(item) = g.items.pop_front() {
                return Pop::Item(item);
            }
            if g.closed {
                return Pop::Closed;
            }
            let (guard, timeout) = self
                .ready
                .wait_timeout(g, poll)
                .expect("queue mutex poisoned");
            g = guard;
            if timeout.timed_out() {
                return match g.items.pop_front() {
                    Some(item) => Pop::Item(item),
                    None if g.closed => Pop::Closed,
                    None => Pop::Empty,
                };
            }
        }
    }

    /// Dequeues up to `n - 1` further items without blocking — used by the
    /// batcher to top up a batch after its first blocking [`pop`](Self::pop).
    pub fn drain_up_to(&self, n: usize) -> Vec<T> {
        let mut g = self.inner.lock().expect("queue mutex poisoned");
        let take = n.min(g.items.len());
        g.items.drain(..take).collect()
    }

    /// Dequeues up to `n` items satisfying `pred` without blocking,
    /// scanning front to back; items that do not match keep their
    /// relative order. This is how a multi-tenant batcher tops up a
    /// batch with *same-model* jobs while other tenants' jobs stay
    /// queued for the next worker, FIFO within each tenant.
    pub fn drain_matching(&self, n: usize, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut g = self.inner.lock().expect("queue mutex poisoned");
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(g.items.len());
        while let Some(item) = g.items.pop_front() {
            if taken.len() < n && pred(&item) {
                taken.push(item);
            } else {
                kept.push_back(item);
            }
        }
        g.items = kept;
        taken
    }

    /// Number of items currently queued.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").items.len()
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// consumers drain what remains and then observe [`Pop::Closed`].
    pub fn close(&self) {
        let mut g = self.inner.lock().expect("queue mutex poisoned");
        g.closed = true;
        drop(g);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    const POLL: Duration = Duration::from_millis(5);

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.depth(), 2);
        // Freeing a slot re-opens admission.
        assert!(matches!(q.pop(POLL), Pop::Item(1)));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_drains_before_reporting_closed() {
        let q = BoundedQueue::new(4);
        q.try_push(10).unwrap();
        q.try_push(20).unwrap();
        q.close();
        assert_eq!(q.try_push(30), Err(PushError::Closed));
        // Both admitted items still come out, then Closed — the drain
        // guarantee the server's shutdown path relies on.
        assert!(matches!(q.pop(POLL), Pop::Item(10)));
        assert!(matches!(q.pop(POLL), Pop::Item(20)));
        assert!(matches!(q.pop(POLL), Pop::Closed));
        assert!(matches!(q.pop(POLL), Pop::Closed));
    }

    #[test]
    fn pop_wakes_on_push_from_another_thread() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            // A generous poll: the push should wake us long before it.
            match q2.pop(Duration::from_secs(5)) {
                Pop::Item(v) => v,
                other => panic!("expected item, got {other:?}"),
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(99).unwrap();
        assert_eq!(t.join().unwrap(), 99);
    }

    #[test]
    fn drain_up_to_takes_at_most_n() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.drain_up_to(3), vec![0, 1, 2]);
        assert_eq!(q.drain_up_to(10), vec![3, 4]);
        assert!(q.drain_up_to(2).is_empty());
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_every_item() {
        let q = Arc::new(BoundedQueue::new(16));
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let v = p * 1000 + i;
                    loop {
                        match q.try_push(v) {
                            Ok(()) => break,
                            Err(PushError::Full) => std::thread::yield_now(),
                            Err(PushError::Closed) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match q.pop(POLL) {
                        Pop::Item(v) => got.push(v),
                        Pop::Empty => continue,
                        Pop::Closed => return got,
                    }
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let want: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..50u64).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, want);
    }
}
