//! The `mtsr serve` wire protocol: length-prefixed binary frames over
//! TCP, little-endian throughout, zero external dependencies.
//!
//! ```text
//! request  frame:  magic "MTRQ" u32 | opcode u8 | id u64 | len u32 | payload
//! response frame:  magic "MTRP" u32 | status u8 | id u64 | len u32 | payload
//! ```
//!
//! `id` is chosen by the client and echoed verbatim in the response, so a
//! client may pipeline many requests on one connection and match replies
//! arriving in *completion* order (the dynamic batcher does not preserve
//! submission order across batches).
//!
//! Opcodes: [`Opcode::Infer`] (low-res window in, high-res window out),
//! [`Opcode::Info`] (binary server geometry), [`Opcode::Status`]
//! (plaintext health/queue/latency report), [`Opcode::Shutdown`]
//! (graceful drain) and [`Opcode::Reload`] (zero-downtime model swap).
//! Every reply carries a [`RespStatus`]; `BUSY` is the backpressure
//! signal — the queue was full and the request was *not* admitted — and
//! `TIMEOUT` means the request missed its deadline while queued and was
//! never executed.
//!
//! # Multi-model tenancy
//!
//! One daemon serves many registered models (one per city / upscaling
//! factor). An [`InferRequest`] names its tenant with a `model` id;
//! replies echo the id plus the **plan generation** that served them —
//! a counter bumped by every hot reload, so a client can always tell
//! which weight snapshot produced a frame (the unit of the bit-identity
//! guarantee). [`Opcode::Info`] takes an optional 4-byte model id in its
//! payload and reports that tenant's geometry.
//!
//! # Incremental framing
//!
//! The readiness-polled server never blocks on a socket, so it cannot
//! use the blocking [`read_request`] path. [`FrameAssembler`] is the
//! non-blocking counterpart: bytes go in as they arrive, complete frames
//! come out; a partial frame simply stays buffered (slow senders hold
//! their own bytes, nobody else's thread). The 64 MiB cap is enforced on
//! the *length field* before any payload is buffered, so a forged length
//! can neither allocate nor accumulate unboundedly.

use std::io::{self, Read, Write};

/// Request-frame magic (`b"MTRQ"` little-endian).
pub const MAGIC_REQ: u32 = u32::from_le_bytes(*b"MTRQ");
/// Response-frame magic (`b"MTRP"` little-endian).
pub const MAGIC_RESP: u32 = u32::from_le_bytes(*b"MTRP");

/// Hard cap on any frame payload; a garbage length prefix must not make
/// the daemon allocate unboundedly.
pub const MAX_PAYLOAD: u32 = 1 << 26; // 64 MiB

/// Request operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Submit one low-res window; the reply carries the high-res window.
    Infer,
    /// Ask for the server's planned geometry ([`ServerInfo`]).
    Info,
    /// Ask for the plaintext status report.
    Status,
    /// Trigger a graceful drain: stop admitting, answer everything
    /// already queued, then exit.
    Shutdown,
    /// Swap a freshly planned checkpoint into one model slot without
    /// dropping a request ([`ReloadRequest`] payload). The `OK` reply
    /// carries the new plan generation as a little-endian `u32`.
    Reload,
    /// Submit the later-arriving fine-grained ground truth for an
    /// earlier `INFER` — the frame's `id` **reuses the `INFER`'s id** to
    /// pair them ([`TruthRequest`] payload). When the daemon still holds
    /// that prediction, the `OK` reply carries a [`TruthAck`] with the
    /// pair's score and the model's rolling drift gauge; when the
    /// prediction is unknown (late, evicted) the `OK` reply is empty.
    Truth,
}

impl Opcode {
    /// The wire byte for this opcode.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Infer => 1,
            Opcode::Info => 2,
            Opcode::Status => 3,
            Opcode::Shutdown => 4,
            Opcode::Reload => 5,
            Opcode::Truth => 6,
        }
    }

    /// Parses a wire byte; unknown values are an error (the framing
    /// layer reports them as recoverable [`Assembled::UnknownOpcode`]).
    pub fn from_u8(v: u8) -> io::Result<Self> {
        match v {
            1 => Ok(Opcode::Infer),
            2 => Ok(Opcode::Info),
            3 => Ok(Opcode::Status),
            4 => Ok(Opcode::Shutdown),
            5 => Ok(Opcode::Reload),
            6 => Ok(Opcode::Truth),
            other => Err(bad_data(format!("unknown opcode {other}"))),
        }
    }
}

/// Response disposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespStatus {
    /// Request served; payload is the result.
    Ok,
    /// Backpressure: the request queue was full, the request was not
    /// admitted. Retry later (payload empty).
    Busy,
    /// The request was admitted but expired in the queue before an
    /// executor picked it up; it was never run.
    Timeout,
    /// Malformed or unservable request; payload is a UTF-8 message.
    Err,
    /// The server is draining and no longer admits work.
    Draining,
}

impl RespStatus {
    fn to_u8(self) -> u8 {
        match self {
            RespStatus::Ok => 0,
            RespStatus::Busy => 1,
            RespStatus::Timeout => 2,
            RespStatus::Err => 3,
            RespStatus::Draining => 4,
        }
    }

    fn from_u8(v: u8) -> io::Result<Self> {
        match v {
            0 => Ok(RespStatus::Ok),
            1 => Ok(RespStatus::Busy),
            2 => Ok(RespStatus::Timeout),
            3 => Ok(RespStatus::Err),
            4 => Ok(RespStatus::Draining),
            other => Err(bad_data(format!("unknown response status {other}"))),
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone)]
pub struct Request {
    /// Requested operation.
    pub op: Opcode,
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// Opcode-specific payload.
    pub payload: Vec<u8>,
}

/// A decoded response frame.
#[derive(Debug, Clone)]
pub struct Response {
    /// Disposition of the request with the same `id`.
    pub status: RespStatus,
    /// Echo of the request id.
    pub id: u64,
    /// Status/opcode-specific payload.
    pub payload: Vec<u8>,
}

impl Response {
    /// An empty-payload response.
    pub fn empty(status: RespStatus, id: u64) -> Response {
        Response {
            status,
            id,
            payload: Vec::new(),
        }
    }

    /// An `ERR` response with a UTF-8 message payload.
    pub fn error(id: u64, msg: impl Into<String>) -> Response {
        Response {
            status: RespStatus::Err,
            id,
            payload: msg.into().into_bytes(),
        }
    }
}

fn bad_data(reason: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_payload(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u32(r)?;
    if len > MAX_PAYLOAD {
        return Err(bad_data(format!(
            "payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte frame cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes one request frame.
pub fn write_request(w: &mut impl Write, op: Opcode, id: u64, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    w.write_all(&MAGIC_REQ.to_le_bytes())?;
    w.write_all(&[op.to_u8()])?;
    w.write_all(&id.to_le_bytes())?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one request frame. The caller is expected to have consumed the
/// 4 magic bytes already (see [`read_request`]) when using the split
/// variant; this function reads a whole frame.
pub fn read_request(r: &mut impl Read) -> io::Result<Request> {
    let magic = read_u32(r)?;
    read_request_after_magic(r, magic)
}

/// Reads the remainder of a request frame once `magic` has been read —
/// lets a polling server loop check the shutdown flag between frames
/// without ever splitting a frame.
pub fn read_request_after_magic(r: &mut impl Read, magic: u32) -> io::Result<Request> {
    if magic != MAGIC_REQ {
        return Err(bad_data(format!(
            "bad request magic {magic:#010x} (expected {MAGIC_REQ:#010x})"
        )));
    }
    let op = Opcode::from_u8(read_u8(r)?)?;
    let id = read_u64(r)?;
    let payload = read_payload(r)?;
    Ok(Request { op, id, payload })
}

/// Writes one response frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    debug_assert!(resp.payload.len() <= MAX_PAYLOAD as usize);
    w.write_all(&MAGIC_RESP.to_le_bytes())?;
    w.write_all(&[resp.status.to_u8()])?;
    w.write_all(&resp.id.to_le_bytes())?;
    w.write_all(&(resp.payload.len() as u32).to_le_bytes())?;
    w.write_all(&resp.payload)?;
    w.flush()
}

/// Reads one response frame.
pub fn read_response(r: &mut impl Read) -> io::Result<Response> {
    let magic = read_u32(r)?;
    if magic != MAGIC_RESP {
        return Err(bad_data(format!(
            "bad response magic {magic:#010x} (expected {MAGIC_RESP:#010x})"
        )));
    }
    let status = RespStatus::from_u8(read_u8(r)?)?;
    let id = read_u64(r)?;
    let payload = read_payload(r)?;
    Ok(Response {
        status,
        id,
        payload,
    })
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

fn push_f32s(out: &mut Vec<u8>, data: &[f32]) {
    out.reserve(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn parse_f32s(bytes: &[u8]) -> io::Result<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(bad_data(format!(
            "f32 payload of {} bytes is not 4-aligned",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn field_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

/// Payload of an [`Opcode::Infer`] request: one `[s, h, w]` low-res
/// window plus its tenant model id and per-request deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct InferRequest {
    /// Registered model this window is routed to (0 = first model).
    pub model: u32,
    /// Per-request deadline in milliseconds; 0 selects the server default.
    pub deadline_ms: u32,
    /// Temporal length of the window.
    pub s: u32,
    /// Window height (coarse cells).
    pub h: u32,
    /// Window width (coarse cells).
    pub w: u32,
    /// `s·h·w` row-major normalized traffic values.
    pub data: Vec<f32>,
}

impl InferRequest {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.data.len() * 4);
        for v in [self.model, self.deadline_ms, self.s, self.h, self.w] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        push_f32s(&mut out, &self.data);
        out
    }

    /// Parses the payload, validating the element count.
    pub fn decode(bytes: &[u8]) -> io::Result<InferRequest> {
        if bytes.len() < 20 {
            return Err(bad_data("INFER payload shorter than its header".into()));
        }
        let (model, deadline_ms, s, h, w) = (
            field_u32(bytes, 0),
            field_u32(bytes, 4),
            field_u32(bytes, 8),
            field_u32(bytes, 12),
            field_u32(bytes, 16),
        );
        let data = parse_f32s(&bytes[20..])?;
        // u128 math: a forged [s, h, w] of u32::MAX each reaches 2^96.
        let want = (s as u128) * (h as u128) * (w as u128);
        if data.len() as u128 != want {
            return Err(bad_data(format!(
                "INFER window [{s}, {h}, {w}] wants {want} values, payload has {}",
                data.len()
            )));
        }
        Ok(InferRequest {
            model,
            deadline_ms,
            s,
            h,
            w,
            data,
        })
    }
}

/// Payload of a successful [`Opcode::Infer`] response: the high-res
/// `[h, w]` window, stamped with the model and plan generation that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// The model that served the window (echo of the request's id).
    pub model: u32,
    /// Plan generation of the weights that produced the window; bumped
    /// by every hot reload of this model.
    pub generation: u32,
    /// Fine window height.
    pub h: u32,
    /// Fine window width.
    pub w: u32,
    /// `h·w` row-major normalized predictions.
    pub data: Vec<f32>,
}

impl InferResponse {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.data.len() * 4);
        for v in [self.model, self.generation, self.h, self.w] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        push_f32s(&mut out, &self.data);
        out
    }

    /// Parses the payload, validating the element count.
    pub fn decode(bytes: &[u8]) -> io::Result<InferResponse> {
        if bytes.len() < 16 {
            return Err(bad_data("INFER response shorter than its header".into()));
        }
        let (model, generation, h, w) = (
            field_u32(bytes, 0),
            field_u32(bytes, 4),
            field_u32(bytes, 8),
            field_u32(bytes, 12),
        );
        let data = parse_f32s(&bytes[16..])?;
        if data.len() as u64 != (h as u64) * (w as u64) {
            return Err(bad_data(format!(
                "INFER response [{h}, {w}] wants {} values, payload has {}",
                (h as u64) * (w as u64),
                data.len()
            )));
        }
        Ok(InferResponse {
            model,
            generation,
            h,
            w,
            data,
        })
    }
}

/// Payload of an [`Opcode::Reload`] request: which model slot to swap
/// and where the fresh checkpoint lives. An empty source asks the
/// server to re-plan from the model's currently recorded source (the
/// SIGHUP semantics, available per-model over the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadRequest {
    /// Registered model slot to swap.
    pub model: u32,
    /// Checkpoint source (a path for the daemon's planner); empty means
    /// "re-plan from the recorded source".
    pub source: String,
}

impl ReloadRequest {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.source.len());
        out.extend_from_slice(&self.model.to_le_bytes());
        out.extend_from_slice(self.source.as_bytes());
        out
    }

    /// Parses the payload.
    pub fn decode(bytes: &[u8]) -> io::Result<ReloadRequest> {
        if bytes.len() < 4 {
            return Err(bad_data("RELOAD payload shorter than its header".into()));
        }
        let model = field_u32(bytes, 0);
        let source = std::str::from_utf8(&bytes[4..])
            .map_err(|e| bad_data(format!("RELOAD source is not UTF-8: {e}")))?
            .to_string();
        Ok(ReloadRequest { model, source })
    }
}

/// Payload of an [`Opcode::Truth`] request: the fine-grained `[h, w]`
/// ground-truth window for the `INFER` whose id this frame reuses.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthRequest {
    /// Model the paired `INFER` was routed to.
    pub model: u32,
    /// Truth window height (fine cells).
    pub h: u32,
    /// Truth window width (fine cells).
    pub w: u32,
    /// `h·w` row-major normalized ground-truth values.
    pub data: Vec<f32>,
}

impl TruthRequest {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.data.len() * 4);
        for v in [self.model, self.h, self.w] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        push_f32s(&mut out, &self.data);
        out
    }

    /// Parses the payload, validating the element count.
    pub fn decode(bytes: &[u8]) -> io::Result<TruthRequest> {
        if bytes.len() < 12 {
            return Err(bad_data("TRUTH payload shorter than its header".into()));
        }
        let (model, h, w) = (
            field_u32(bytes, 0),
            field_u32(bytes, 4),
            field_u32(bytes, 8),
        );
        let data = parse_f32s(&bytes[12..])?;
        if data.len() as u64 != (h as u64) * (w as u64) {
            return Err(bad_data(format!(
                "TRUTH window [{h}, {w}] wants {} values, payload has {}",
                (h as u64) * (w as u64),
                data.len()
            )));
        }
        Ok(TruthRequest { model, h, w, data })
    }
}

/// Payload of a *matched* [`Opcode::Truth`] `OK` response. An unmatched
/// truth gets an empty `OK` payload instead — clients distinguish the
/// two by payload length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthAck {
    /// Range-normalised RMSE of this one prediction↔truth pair.
    pub window_nrmse: f32,
    /// The model's rolling drift gauge after folding this pair in.
    pub rolling_nrmse: f32,
}

impl TruthAck {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        out.extend_from_slice(&self.window_nrmse.to_le_bytes());
        out.extend_from_slice(&self.rolling_nrmse.to_le_bytes());
        out
    }

    /// Parses the payload.
    pub fn decode(bytes: &[u8]) -> io::Result<TruthAck> {
        if bytes.len() != 8 {
            return Err(bad_data(format!(
                "TRUTH ack must be 8 bytes, got {}",
                bytes.len()
            )));
        }
        let bits = |off: usize| {
            f32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
        };
        Ok(TruthAck {
            window_nrmse: bits(0),
            rolling_nrmse: bits(4),
        })
    }
}

/// Payload of an [`Opcode::Info`] response: the geometry one registered
/// model's plan is specialised for, so clients can size windows without
/// out-of-band configuration. An [`Opcode::Info`] *request* carries
/// either an empty payload (model 0) or a 4-byte little-endian model id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// The model this geometry describes.
    pub model: u32,
    /// The model's current plan generation.
    pub generation: u32,
    /// Number of models registered in the daemon.
    pub model_count: u32,
    /// Temporal length the plan expects.
    pub s: u32,
    /// Coarse window height.
    pub h: u32,
    /// Coarse window width.
    pub w: u32,
    /// Fine (output) window height.
    pub out_h: u32,
    /// Fine (output) window width.
    pub out_w: u32,
    /// Max windows coalesced per executor replay.
    pub batch: u32,
    /// Bounded request-queue capacity.
    pub queue_cap: u32,
    /// Server default deadline in milliseconds.
    pub deadline_ms: u32,
    /// Fuse policy the model's plan was built with: 0 = exact,
    /// 1 = folded, 2 = quantized (see [`ServerInfo::fuse_name`]).
    pub fuse: u32,
}

impl ServerInfo {
    /// Human-readable name of the [`ServerInfo::fuse`] code.
    pub fn fuse_name(&self) -> &'static str {
        match self.fuse {
            0 => "exact",
            1 => "folded",
            2 => "quantized",
            _ => "unknown",
        }
    }

    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        for v in [
            self.model,
            self.generation,
            self.model_count,
            self.s,
            self.h,
            self.w,
            self.out_h,
            self.out_w,
            self.batch,
            self.queue_cap,
            self.deadline_ms,
            self.fuse,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parses the payload.
    pub fn decode(bytes: &[u8]) -> io::Result<ServerInfo> {
        if bytes.len() != 48 {
            return Err(bad_data(format!(
                "INFO payload must be 48 bytes, got {}",
                bytes.len()
            )));
        }
        Ok(ServerInfo {
            model: field_u32(bytes, 0),
            generation: field_u32(bytes, 4),
            model_count: field_u32(bytes, 8),
            s: field_u32(bytes, 12),
            h: field_u32(bytes, 16),
            w: field_u32(bytes, 20),
            out_h: field_u32(bytes, 24),
            out_w: field_u32(bytes, 28),
            batch: field_u32(bytes, 32),
            queue_cap: field_u32(bytes, 36),
            deadline_ms: field_u32(bytes, 40),
            fuse: field_u32(bytes, 44),
        })
    }
}

// ---------------------------------------------------------------------------
// Incremental framing for the non-blocking event loop
// ---------------------------------------------------------------------------

/// Bytes in a request-frame header: magic(4) + opcode(1) + id(8) + len(4).
pub const FRAME_HEADER: usize = 17;

/// One outcome of [`FrameAssembler::next`].
#[derive(Debug)]
pub enum Assembled {
    /// A complete, well-formed request frame.
    Frame(Request),
    /// The header was intact (magic and length sane) but the opcode is
    /// unknown. The whole frame has been consumed, so the stream is
    /// still in sync — answer `ERR` with the echoed id and keep going.
    UnknownOpcode {
        /// The unrecognised opcode byte.
        op: u8,
        /// The client-chosen id, still echoable.
        id: u64,
    },
}

/// An unrecoverable framing violation: the stream can no longer be
/// resynchronised and the connection must be closed (after a
/// best-effort `ERR` reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameFatal {
    /// The 4 bytes where a frame must start are not `MTRQ`.
    BadMagic(u32),
    /// The length field exceeds [`MAX_PAYLOAD`]; detected before any
    /// payload byte is buffered. The id was already parsed, so the
    /// server can still address its final `ERR`.
    Oversized {
        /// The client-chosen id of the oversized frame.
        id: u64,
        /// The forged length field.
        len: u32,
    },
}

impl std::fmt::Display for FrameFatal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameFatal::BadMagic(m) => {
                write!(
                    f,
                    "bad request magic {m:#010x} (expected {MAGIC_REQ:#010x})"
                )
            }
            FrameFatal::Oversized { id, len } => write!(
                f,
                "request {id} payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte frame cap"
            ),
        }
    }
}

/// Incremental request-frame parser for non-blocking sockets: feed
/// whatever bytes arrived with [`push`](Self::push), then drain complete
/// frames with [`next`](Self::next). A partial frame stays buffered
/// (that is the whole slow-loris story: the sender's bytes wait in *its*
/// connection's buffer, no thread waits with them).
///
/// Memory is bounded: the length field is validated against
/// [`MAX_PAYLOAD`] as soon as the header is complete, so no input can
/// force more than one maximal frame to accumulate between `next` calls.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    start: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (incomplete-frame backlog).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    fn u32_at(&self, off: usize) -> u32 {
        field_u32(&self.buf, self.start + off)
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        // Compact once the dead prefix dominates, so a long-lived
        // connection does not grow its buffer without bound.
        if self.start >= 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Extracts the next complete frame, `Ok(None)` if more bytes are
    /// needed, or a [`FrameFatal`] if the stream is unrecoverable.
    ///
    /// Not an [`Iterator`]: the `Result<Option<..>>` shape distinguishes
    /// "need more bytes" from "stream is dead", which `Iterator::next`
    /// cannot express.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Assembled>, FrameFatal> {
        let avail = self.buffered();
        if avail < 4 {
            return Ok(None);
        }
        let magic = self.u32_at(0);
        if magic != MAGIC_REQ {
            return Err(FrameFatal::BadMagic(magic));
        }
        if avail < FRAME_HEADER {
            return Ok(None);
        }
        let op = self.buf[self.start + 4];
        let id = u64::from(self.u32_at(5)) | (u64::from(self.u32_at(9)) << 32);
        let len = self.u32_at(13);
        if len > MAX_PAYLOAD {
            return Err(FrameFatal::Oversized { id, len });
        }
        let total = FRAME_HEADER + len as usize;
        if avail < total {
            return Ok(None);
        }
        let payload_at = self.start + FRAME_HEADER;
        let assembled = match Opcode::from_u8(op) {
            Ok(op) => Assembled::Frame(Request {
                op,
                id,
                payload: self.buf[payload_at..payload_at + len as usize].to_vec(),
            }),
            Err(_) => Assembled::UnknownOpcode { op, id },
        };
        self.consume(total);
        Ok(Some(assembled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_request(&mut buf, Opcode::Infer, 7, &[1, 2, 3]).unwrap();
        let req = read_request(&mut buf.as_slice()).unwrap();
        assert_eq!((req.op, req.id), (Opcode::Infer, 7));
        assert_eq!(req.payload, vec![1, 2, 3]);

        let mut buf = Vec::new();
        let resp = Response {
            status: RespStatus::Busy,
            id: 9,
            payload: Vec::new(),
        };
        write_response(&mut buf, &resp).unwrap();
        let back = read_response(&mut buf.as_slice()).unwrap();
        assert_eq!((back.status, back.id), (RespStatus::Busy, 9));
    }

    #[test]
    fn rejects_bad_magic_and_oversized_payloads() {
        let mut buf = Vec::new();
        write_request(&mut buf, Opcode::Status, 1, &[]).unwrap();
        buf[0] ^= 0xFF;
        assert!(read_request(&mut buf.as_slice()).is_err());

        // A forged length prefix beyond MAX_PAYLOAD is rejected before
        // any allocation of that size.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_REQ.to_le_bytes());
        buf.push(1);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_request(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn infer_payloads_roundtrip_and_validate() {
        let req = InferRequest {
            model: 3,
            deadline_ms: 250,
            s: 2,
            h: 3,
            w: 3,
            data: (0..18).map(|i| i as f32 * 0.5).collect(),
        };
        assert_eq!(InferRequest::decode(&req.encode()).unwrap(), req);
        // Element-count mismatch is detected.
        let mut short = req.clone();
        short.data.pop();
        assert!(InferRequest::decode(&short.encode()).is_err());

        let resp = InferResponse {
            model: 3,
            generation: 7,
            h: 6,
            w: 6,
            data: (0..36).map(|i| i as f32).collect(),
        };
        assert_eq!(InferResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn reload_payloads_roundtrip() {
        let req = ReloadRequest {
            model: 2,
            source: "/tmp/up10.ckpt".into(),
        };
        assert_eq!(ReloadRequest::decode(&req.encode()).unwrap(), req);
        let empty = ReloadRequest {
            model: 0,
            source: String::new(),
        };
        assert_eq!(ReloadRequest::decode(&empty.encode()).unwrap(), empty);
        assert!(ReloadRequest::decode(&[0u8; 3]).is_err());
        assert!(ReloadRequest::decode(&[0, 0, 0, 0, 0xFF, 0xFE]).is_err());
    }

    #[test]
    fn truth_payloads_roundtrip_and_validate() {
        let req = TruthRequest {
            model: 1,
            h: 4,
            w: 4,
            data: (0..16).map(|i| i as f32 * 0.25).collect(),
        };
        assert_eq!(TruthRequest::decode(&req.encode()).unwrap(), req);
        let mut short = req.clone();
        short.data.pop();
        assert!(TruthRequest::decode(&short.encode()).is_err());
        assert!(TruthRequest::decode(&[0u8; 11]).is_err());

        let ack = TruthAck {
            window_nrmse: 0.25,
            rolling_nrmse: 0.75,
        };
        assert_eq!(TruthAck::decode(&ack.encode()).unwrap(), ack);
        assert!(TruthAck::decode(&[0u8; 7]).is_err());
    }

    #[test]
    fn info_roundtrips() {
        let info = ServerInfo {
            model: 1,
            generation: 4,
            model_count: 2,
            s: 3,
            h: 5,
            w: 5,
            out_h: 20,
            out_w: 20,
            batch: 8,
            queue_cap: 64,
            deadline_ms: 2000,
            fuse: 2,
        };
        assert_eq!(ServerInfo::decode(&info.encode()).unwrap(), info);
        assert_eq!(info.fuse_name(), "quantized");
        assert!(ServerInfo::decode(&[0u8; 31]).is_err());
    }

    #[test]
    fn assembler_reproduces_byte_at_a_time_frames() {
        let mut wire = Vec::new();
        write_request(&mut wire, Opcode::Infer, 0xABCD_EF01_2345_6789, &[9, 8, 7]).unwrap();
        write_request(&mut wire, Opcode::Status, 2, &[]).unwrap();

        let mut asm = FrameAssembler::new();
        let mut frames = Vec::new();
        for b in &wire {
            asm.push(std::slice::from_ref(b));
            while let Some(f) = asm.next().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        match &frames[0] {
            Assembled::Frame(req) => {
                assert_eq!((req.op, req.id), (Opcode::Infer, 0xABCD_EF01_2345_6789));
                assert_eq!(req.payload, vec![9, 8, 7]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn assembler_flags_unknown_opcode_but_stays_in_sync() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC_REQ.to_le_bytes());
        wire.push(99); // unknown opcode
        wire.extend_from_slice(&41u64.to_le_bytes());
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(&[1, 2]);
        write_request(&mut wire, Opcode::Status, 42, &[]).unwrap();

        let mut asm = FrameAssembler::new();
        asm.push(&wire);
        match asm.next().unwrap() {
            Some(Assembled::UnknownOpcode { op: 99, id: 41 }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // The following frame parses cleanly: the bad frame was skipped
        // whole, so the stream never desynchronised.
        match asm.next().unwrap() {
            Some(Assembled::Frame(req)) => assert_eq!((req.op, req.id), (Opcode::Status, 42)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn assembler_rejects_bad_magic_and_oversized_before_buffering() {
        let mut asm = FrameAssembler::new();
        asm.push(b"JUNK");
        assert!(matches!(asm.next(), Err(FrameFatal::BadMagic(_))));

        // Forged length: detected from the 17 header bytes alone.
        let mut asm = FrameAssembler::new();
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC_REQ.to_le_bytes());
        wire.push(1);
        wire.extend_from_slice(&7u64.to_le_bytes());
        wire.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        asm.push(&wire);
        match asm.next() {
            Err(FrameFatal::Oversized { id: 7, len }) => assert_eq!(len, MAX_PAYLOAD + 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
