//! The `mtsr serve` wire protocol: length-prefixed binary frames over
//! TCP, little-endian throughout, zero external dependencies.
//!
//! ```text
//! request  frame:  magic "MTRQ" u32 | opcode u8 | id u64 | len u32 | payload
//! response frame:  magic "MTRP" u32 | status u8 | id u64 | len u32 | payload
//! ```
//!
//! `id` is chosen by the client and echoed verbatim in the response, so a
//! client may pipeline many requests on one connection and match replies
//! arriving in *completion* order (the dynamic batcher does not preserve
//! submission order across batches).
//!
//! Opcodes: [`Opcode::Infer`] (low-res window in, high-res window out),
//! [`Opcode::Info`] (binary server geometry), [`Opcode::Status`]
//! (plaintext health/queue/latency report) and [`Opcode::Shutdown`]
//! (graceful drain). Every reply carries a [`RespStatus`]; `BUSY` is the
//! backpressure signal — the queue was full and the request was *not*
//! admitted — and `TIMEOUT` means the request missed its deadline while
//! queued and was never executed.

use std::io::{self, Read, Write};

/// Request-frame magic (`b"MTRQ"` little-endian).
pub const MAGIC_REQ: u32 = u32::from_le_bytes(*b"MTRQ");
/// Response-frame magic (`b"MTRP"` little-endian).
pub const MAGIC_RESP: u32 = u32::from_le_bytes(*b"MTRP");

/// Hard cap on any frame payload; a garbage length prefix must not make
/// the daemon allocate unboundedly.
pub const MAX_PAYLOAD: u32 = 1 << 26; // 64 MiB

/// Request operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Submit one low-res window; the reply carries the high-res window.
    Infer,
    /// Ask for the server's planned geometry ([`ServerInfo`]).
    Info,
    /// Ask for the plaintext status report.
    Status,
    /// Trigger a graceful drain: stop admitting, answer everything
    /// already queued, then exit.
    Shutdown,
}

impl Opcode {
    fn to_u8(self) -> u8 {
        match self {
            Opcode::Infer => 1,
            Opcode::Info => 2,
            Opcode::Status => 3,
            Opcode::Shutdown => 4,
        }
    }

    fn from_u8(v: u8) -> io::Result<Self> {
        match v {
            1 => Ok(Opcode::Infer),
            2 => Ok(Opcode::Info),
            3 => Ok(Opcode::Status),
            4 => Ok(Opcode::Shutdown),
            other => Err(bad_data(format!("unknown opcode {other}"))),
        }
    }
}

/// Response disposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespStatus {
    /// Request served; payload is the result.
    Ok,
    /// Backpressure: the request queue was full, the request was not
    /// admitted. Retry later (payload empty).
    Busy,
    /// The request was admitted but expired in the queue before an
    /// executor picked it up; it was never run.
    Timeout,
    /// Malformed or unservable request; payload is a UTF-8 message.
    Err,
    /// The server is draining and no longer admits work.
    Draining,
}

impl RespStatus {
    fn to_u8(self) -> u8 {
        match self {
            RespStatus::Ok => 0,
            RespStatus::Busy => 1,
            RespStatus::Timeout => 2,
            RespStatus::Err => 3,
            RespStatus::Draining => 4,
        }
    }

    fn from_u8(v: u8) -> io::Result<Self> {
        match v {
            0 => Ok(RespStatus::Ok),
            1 => Ok(RespStatus::Busy),
            2 => Ok(RespStatus::Timeout),
            3 => Ok(RespStatus::Err),
            4 => Ok(RespStatus::Draining),
            other => Err(bad_data(format!("unknown response status {other}"))),
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone)]
pub struct Request {
    /// Requested operation.
    pub op: Opcode,
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// Opcode-specific payload.
    pub payload: Vec<u8>,
}

/// A decoded response frame.
#[derive(Debug, Clone)]
pub struct Response {
    /// Disposition of the request with the same `id`.
    pub status: RespStatus,
    /// Echo of the request id.
    pub id: u64,
    /// Status/opcode-specific payload.
    pub payload: Vec<u8>,
}

impl Response {
    /// An empty-payload response.
    pub fn empty(status: RespStatus, id: u64) -> Response {
        Response {
            status,
            id,
            payload: Vec::new(),
        }
    }

    /// An `ERR` response with a UTF-8 message payload.
    pub fn error(id: u64, msg: impl Into<String>) -> Response {
        Response {
            status: RespStatus::Err,
            id,
            payload: msg.into().into_bytes(),
        }
    }
}

fn bad_data(reason: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_payload(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u32(r)?;
    if len > MAX_PAYLOAD {
        return Err(bad_data(format!(
            "payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte frame cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes one request frame.
pub fn write_request(w: &mut impl Write, op: Opcode, id: u64, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    w.write_all(&MAGIC_REQ.to_le_bytes())?;
    w.write_all(&[op.to_u8()])?;
    w.write_all(&id.to_le_bytes())?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one request frame. The caller is expected to have consumed the
/// 4 magic bytes already (see [`read_request`]) when using the split
/// variant; this function reads a whole frame.
pub fn read_request(r: &mut impl Read) -> io::Result<Request> {
    let magic = read_u32(r)?;
    read_request_after_magic(r, magic)
}

/// Reads the remainder of a request frame once `magic` has been read —
/// lets a polling server loop check the shutdown flag between frames
/// without ever splitting a frame.
pub fn read_request_after_magic(r: &mut impl Read, magic: u32) -> io::Result<Request> {
    if magic != MAGIC_REQ {
        return Err(bad_data(format!(
            "bad request magic {magic:#010x} (expected {MAGIC_REQ:#010x})"
        )));
    }
    let op = Opcode::from_u8(read_u8(r)?)?;
    let id = read_u64(r)?;
    let payload = read_payload(r)?;
    Ok(Request { op, id, payload })
}

/// Writes one response frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    debug_assert!(resp.payload.len() <= MAX_PAYLOAD as usize);
    w.write_all(&MAGIC_RESP.to_le_bytes())?;
    w.write_all(&[resp.status.to_u8()])?;
    w.write_all(&resp.id.to_le_bytes())?;
    w.write_all(&(resp.payload.len() as u32).to_le_bytes())?;
    w.write_all(&resp.payload)?;
    w.flush()
}

/// Reads one response frame.
pub fn read_response(r: &mut impl Read) -> io::Result<Response> {
    let magic = read_u32(r)?;
    if magic != MAGIC_RESP {
        return Err(bad_data(format!(
            "bad response magic {magic:#010x} (expected {MAGIC_RESP:#010x})"
        )));
    }
    let status = RespStatus::from_u8(read_u8(r)?)?;
    let id = read_u64(r)?;
    let payload = read_payload(r)?;
    Ok(Response {
        status,
        id,
        payload,
    })
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

fn push_f32s(out: &mut Vec<u8>, data: &[f32]) {
    out.reserve(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn parse_f32s(bytes: &[u8]) -> io::Result<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(bad_data(format!(
            "f32 payload of {} bytes is not 4-aligned",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn field_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

/// Payload of an [`Opcode::Infer`] request: one `[s, h, w]` low-res
/// window plus its per-request deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct InferRequest {
    /// Per-request deadline in milliseconds; 0 selects the server default.
    pub deadline_ms: u32,
    /// Temporal length of the window.
    pub s: u32,
    /// Window height (coarse cells).
    pub h: u32,
    /// Window width (coarse cells).
    pub w: u32,
    /// `s·h·w` row-major normalized traffic values.
    pub data: Vec<f32>,
}

impl InferRequest {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.data.len() * 4);
        for v in [self.deadline_ms, self.s, self.h, self.w] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        push_f32s(&mut out, &self.data);
        out
    }

    /// Parses the payload, validating the element count.
    pub fn decode(bytes: &[u8]) -> io::Result<InferRequest> {
        if bytes.len() < 16 {
            return Err(bad_data("INFER payload shorter than its header".into()));
        }
        let (deadline_ms, s, h, w) = (
            field_u32(bytes, 0),
            field_u32(bytes, 4),
            field_u32(bytes, 8),
            field_u32(bytes, 12),
        );
        let data = parse_f32s(&bytes[16..])?;
        let want = (s as usize) * (h as usize) * (w as usize);
        if data.len() != want {
            return Err(bad_data(format!(
                "INFER window [{s}, {h}, {w}] wants {want} values, payload has {}",
                data.len()
            )));
        }
        Ok(InferRequest {
            deadline_ms,
            s,
            h,
            w,
            data,
        })
    }
}

/// Payload of a successful [`Opcode::Infer`] response: the high-res
/// `[h, w]` window.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Fine window height.
    pub h: u32,
    /// Fine window width.
    pub w: u32,
    /// `h·w` row-major normalized predictions.
    pub data: Vec<f32>,
}

impl InferResponse {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.data.len() * 4);
        out.extend_from_slice(&self.h.to_le_bytes());
        out.extend_from_slice(&self.w.to_le_bytes());
        push_f32s(&mut out, &self.data);
        out
    }

    /// Parses the payload, validating the element count.
    pub fn decode(bytes: &[u8]) -> io::Result<InferResponse> {
        if bytes.len() < 8 {
            return Err(bad_data("INFER response shorter than its header".into()));
        }
        let (h, w) = (field_u32(bytes, 0), field_u32(bytes, 4));
        let data = parse_f32s(&bytes[8..])?;
        if data.len() != (h as usize) * (w as usize) {
            return Err(bad_data(format!(
                "INFER response [{h}, {w}] wants {} values, payload has {}",
                (h as usize) * (w as usize),
                data.len()
            )));
        }
        Ok(InferResponse { h, w, data })
    }
}

/// Payload of an [`Opcode::Info`] response: the geometry the daemon's
/// plan is specialised for, so clients can size windows without
/// out-of-band configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Temporal length the plan expects.
    pub s: u32,
    /// Coarse window height.
    pub h: u32,
    /// Coarse window width.
    pub w: u32,
    /// Fine (output) window height.
    pub out_h: u32,
    /// Fine (output) window width.
    pub out_w: u32,
    /// Max windows coalesced per executor replay.
    pub batch: u32,
    /// Bounded request-queue capacity.
    pub queue_cap: u32,
    /// Server default deadline in milliseconds.
    pub deadline_ms: u32,
}

impl ServerInfo {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        for v in [
            self.s,
            self.h,
            self.w,
            self.out_h,
            self.out_w,
            self.batch,
            self.queue_cap,
            self.deadline_ms,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parses the payload.
    pub fn decode(bytes: &[u8]) -> io::Result<ServerInfo> {
        if bytes.len() != 32 {
            return Err(bad_data(format!(
                "INFO payload must be 32 bytes, got {}",
                bytes.len()
            )));
        }
        Ok(ServerInfo {
            s: field_u32(bytes, 0),
            h: field_u32(bytes, 4),
            w: field_u32(bytes, 8),
            out_h: field_u32(bytes, 12),
            out_w: field_u32(bytes, 16),
            batch: field_u32(bytes, 20),
            queue_cap: field_u32(bytes, 24),
            deadline_ms: field_u32(bytes, 28),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_request(&mut buf, Opcode::Infer, 7, &[1, 2, 3]).unwrap();
        let req = read_request(&mut buf.as_slice()).unwrap();
        assert_eq!((req.op, req.id), (Opcode::Infer, 7));
        assert_eq!(req.payload, vec![1, 2, 3]);

        let mut buf = Vec::new();
        let resp = Response {
            status: RespStatus::Busy,
            id: 9,
            payload: Vec::new(),
        };
        write_response(&mut buf, &resp).unwrap();
        let back = read_response(&mut buf.as_slice()).unwrap();
        assert_eq!((back.status, back.id), (RespStatus::Busy, 9));
    }

    #[test]
    fn rejects_bad_magic_and_oversized_payloads() {
        let mut buf = Vec::new();
        write_request(&mut buf, Opcode::Status, 1, &[]).unwrap();
        buf[0] ^= 0xFF;
        assert!(read_request(&mut buf.as_slice()).is_err());

        // A forged length prefix beyond MAX_PAYLOAD is rejected before
        // any allocation of that size.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_REQ.to_le_bytes());
        buf.push(1);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_request(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn infer_payloads_roundtrip_and_validate() {
        let req = InferRequest {
            deadline_ms: 250,
            s: 2,
            h: 3,
            w: 3,
            data: (0..18).map(|i| i as f32 * 0.5).collect(),
        };
        assert_eq!(InferRequest::decode(&req.encode()).unwrap(), req);
        // Element-count mismatch is detected.
        let mut short = req.clone();
        short.data.pop();
        assert!(InferRequest::decode(&short.encode()).is_err());

        let resp = InferResponse {
            h: 6,
            w: 6,
            data: (0..36).map(|i| i as f32).collect(),
        };
        assert_eq!(InferResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn info_roundtrips() {
        let info = ServerInfo {
            s: 3,
            h: 5,
            w: 5,
            out_h: 20,
            out_w: 20,
            batch: 8,
            queue_cap: 64,
            deadline_ms: 2000,
        };
        assert_eq!(ServerInfo::decode(&info.encode()).unwrap(), info);
        assert!(ServerInfo::decode(&[0u8; 31]).is_err());
    }
}
