//! Multi-model tenancy: a fixed set of named model slots, each holding
//! an atomically swappable `Arc<InferPlan>` plus a **generation**
//! counter bumped by every hot reload.
//!
//! The generation is the unit of the serving bit-identity guarantee:
//! every `INFER` reply is stamped with the generation of the plan that
//! executed it, and all replies of one generation are bit-identical to
//! offline inference under that plan. A swap is a single `RwLock` write
//! of an `Arc`; batchers that already cloned the old `Arc` finish their
//! in-flight batch on it (no torn plans, no draining pause), and pick up
//! the new generation on their next batch.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use mtsr_telemetry::WindowedHist;
use zipnet_core::InferPlan;

use crate::drift::DriftMonitor;

/// Re-plans a model from a checkpoint source (a path, for the CLI) —
/// how the daemon turns a `RELOAD` frame or `SIGHUP` into a fresh
/// [`InferPlan`]. Invoked on a background thread, never on the event
/// loop. Arguments are the model id and the source string.
pub type Planner = Arc<dyn Fn(u32, &str) -> io::Result<Arc<InferPlan>> + Send + Sync>;

/// One model to register at server start.
pub struct ModelSpec {
    /// Human-readable tenant name (shown in STATUS), e.g. `up4`.
    pub name: String,
    /// Checkpoint source the plan came from; reused by source-less
    /// reloads (`SIGHUP`, empty-source `RELOAD` frames).
    pub source: String,
    /// The planned model; generation 0.
    pub plan: Arc<InferPlan>,
}

/// Per-model monotonic counters and latency histogram for STATUS.
#[derive(Default)]
pub(crate) struct ModelStats {
    pub served: AtomicU64,
    pub errors: AtomicU64,
    pub timeouts: AtomicU64,
    pub reloads: AtomicU64,
    /// `TRUTH` frames that matched a buffered prediction.
    pub truth_matched: AtomicU64,
    /// `TRUTH` frames with no matching prediction (late, wrong id, or
    /// the prediction was evicted).
    pub truth_unmatched: AtomicU64,
    /// Times the drift gauge tripped and a fine-tune was started.
    pub drift_triggers: AtomicU64,
    /// Fine-tuned candidates that passed the gate and were promoted.
    pub promotions_ok: AtomicU64,
    /// Candidates rejected by the gate (or whose fine-tune failed).
    pub promotions_rejected: AtomicU64,
    /// A fine-tune thread is currently running for this model — at most
    /// one per model; further triggers are suppressed until it clears.
    pub adapting: AtomicBool,
    pub latency: Mutex<WindowedHist>,
}

pub(crate) struct ModelEntry {
    pub name: String,
    pub source: Mutex<String>,
    /// `(generation, plan)` — swapped as one unit under the write lock.
    slot: RwLock<(u32, Arc<InferPlan>)>,
    pub stats: ModelStats,
    /// Prediction↔truth pairing and the rolling drift gauge.
    pub drift: Mutex<DriftMonitor>,
}

impl ModelEntry {
    /// Observes one served-request latency.
    pub fn observe_latency(&self, ns: u64) {
        self.stats
            .latency
            .lock()
            .expect("model latency mutex poisoned")
            .observe(ns);
    }
}

fn check_plan(name: &str, plan: &InferPlan) -> io::Result<()> {
    let (ind, outd) = (plan.input_dims(), plan.output_dims());
    if ind.len() != 5 || outd.len() != 4 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "model `{name}` needs a generator plan [batch,1,S,h,w] -> [batch,1,fh,fw], \
                 got {ind:?} -> {outd:?}"
            ),
        ));
    }
    Ok(())
}

/// The daemon's tenant table. The set of slots is fixed at start; hot
/// reload swaps a slot's plan, it never adds or removes tenants.
pub(crate) struct ModelRegistry {
    entries: Vec<ModelEntry>,
}

impl ModelRegistry {
    pub fn new(specs: Vec<ModelSpec>) -> io::Result<ModelRegistry> {
        if specs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs at least one model",
            ));
        }
        let mut entries = Vec::with_capacity(specs.len());
        for spec in specs {
            check_plan(&spec.name, &spec.plan)?;
            entries.push(ModelEntry {
                name: spec.name,
                source: Mutex::new(spec.source),
                slot: RwLock::new((0, spec.plan)),
                stats: ModelStats::default(),
                drift: Mutex::new(DriftMonitor::new(32, 32, 8)),
            });
        }
        Ok(ModelRegistry { entries })
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn entry(&self, id: u32) -> Option<&ModelEntry> {
        self.entries.get(id as usize)
    }

    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// The model's current `(generation, plan)` snapshot.
    pub fn current(&self, id: u32) -> Option<(u32, Arc<InferPlan>)> {
        let entry = self.entry(id)?;
        let g = entry.slot.read().expect("model slot poisoned");
        Some((g.0, Arc::clone(&g.1)))
    }

    /// Atomically swaps `plan` into slot `id`, bumping its generation.
    /// The new plan must keep the slot's exact geometry (including the
    /// batch lane count): a tenant is one city/factor, and geometry
    /// changes would invalidate requests admitted against the old
    /// shapes. Returns the new generation.
    pub fn swap(&self, id: u32, plan: Arc<InferPlan>, source: Option<String>) -> io::Result<u32> {
        let entry = self.entry(id).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown model id {id} ({} registered)", self.len()),
            )
        })?;
        check_plan(&entry.name, &plan)?;
        let mut g = entry.slot.write().expect("model slot poisoned");
        let old = &g.1;
        if plan.input_dims() != old.input_dims() || plan.output_dims() != old.output_dims() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "reload of model `{}` changes geometry {:?} -> {:?} (register a new \
                     tenant instead)",
                    entry.name,
                    old.input_dims(),
                    plan.input_dims()
                ),
            ));
        }
        g.0 += 1;
        g.1 = plan;
        let generation = g.0;
        drop(g);
        if let Some(src) = source {
            *entry.source.lock().expect("model source poisoned") = src;
        }
        entry.stats.reloads.fetch_add(1, Ordering::SeqCst);
        Ok(generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsr_tensor::Rng;
    use zipnet_core::{plan_zipnet, FusePolicy, ZipNet, ZipNetConfig};

    fn tiny_plan(seed: u64) -> Arc<InferPlan> {
        let mut gen = ZipNet::new(&ZipNetConfig::tiny(4, 2), &mut Rng::seed_from(seed)).unwrap();
        let exec = plan_zipnet(&mut gen, FusePolicy::Exact, 2, 3, 3).unwrap();
        Arc::clone(exec.plan())
    }

    #[test]
    fn swap_bumps_generation_and_keeps_geometry() {
        let reg = ModelRegistry::new(vec![ModelSpec {
            name: "up4".into(),
            source: "a.ckpt".into(),
            plan: tiny_plan(1),
        }])
        .unwrap();
        let (g0, p0) = reg.current(0).unwrap();
        assert_eq!(g0, 0);
        let g1 = reg.swap(0, tiny_plan(2), Some("b.ckpt".into())).unwrap();
        assert_eq!(g1, 1);
        let (g, p1) = reg.current(0).unwrap();
        assert_eq!(g, 1);
        // The old Arc stays valid for in-flight batches.
        assert_eq!(p0.input_dims(), p1.input_dims());
        assert_eq!(
            *reg.entry(0).unwrap().source.lock().unwrap(),
            "b.ckpt".to_string()
        );
        assert!(reg.current(1).is_none());
        assert!(reg.swap(9, tiny_plan(3), None).is_err());
    }

    #[test]
    fn geometry_changing_swap_is_rejected() {
        let reg = ModelRegistry::new(vec![ModelSpec {
            name: "up4".into(),
            source: String::new(),
            plan: tiny_plan(1),
        }])
        .unwrap();
        // Different batch count = different geometry: rejected.
        let mut gen = ZipNet::new(&ZipNetConfig::tiny(4, 2), &mut Rng::seed_from(5)).unwrap();
        let other = plan_zipnet(&mut gen, FusePolicy::Exact, 4, 3, 3).unwrap();
        let err = reg.swap(0, Arc::clone(other.plan()), None).unwrap_err();
        assert!(err.to_string().contains("changes geometry"), "{err}");
        let (g, _) = reg.current(0).unwrap();
        assert_eq!(g, 0, "failed swap must not bump the generation");
    }
}
