//! The serving daemon: a readiness-polled event loop (epoll on Linux,
//! `poll(2)` elsewhere on unix) front-ending a bounded request queue
//! drained by batcher threads, with multi-model tenancy and
//! zero-downtime hot reload.
//!
//! # Threads — a fixed count, independent of connection count
//!
//! ```text
//!                    ┌───────────────────────────────────────────┐
//! clients ══ TCP ══► │ event loop (1 thread, epoll/poll)         │
//!                    │  accept · per-conn read/write state       │
//!                    │  machines · frame assembly · admission    │
//!                    └──────┬───────────────────────────▲────────┘
//!                 try_push  │                           │ completions + waker
//!                           ▼                           │
//!                    BoundedQueue ──pop/drain_matching──► batcher × W
//!                                                        (cached execs per
//!                                                         model × generation)
//! ```
//!
//! * The **event loop** owns every socket. Each connection is a small
//!   state machine: a [`FrameAssembler`] buffers partial frames (a
//!   slow-loris sender occupies one slot and some buffer, never a
//!   thread), a write buffer absorbs replies and drains on writability
//!   (a slow *reader* pauses its own admission once the buffer passes a
//!   cap — per-connection backpressure, no global stall). Thousands of
//!   idle probe connections cost one registration each.
//! * **Admission** is unchanged in spirit from the thread-per-connection
//!   daemon: non-blocking `try_push`, `Full` → `BUSY`, closed →
//!   `DRAINING`. Load is shed at admission or not at all.
//! * Each **batcher** pops a job, resolves the job's model in the
//!   `ModelRegistry`, lingers briefly and tops the
//!   batch up with *same-model* jobs (`drain_matching`), then replays a
//!   cached executor for that model's current plan generation. Replies
//!   are stamped `(model, generation)`; per-sample kernels keep them
//!   bit-identical to offline inference under that exact plan.
//! * **Hot reload** (`RELOAD` frame or `SIGHUP`) re-plans a checkpoint
//!   on a throwaway thread and atomically swaps the slot's
//!   `Arc<InferPlan>`, bumping its generation. In-flight batches finish
//!   on the `Arc` they already cloned — no pause, no torn plan.
//!
//! Shutdown (SHUTDOWN frame, [`ServerHandle::request_shutdown`], or a
//! signal forwarded by the binary) closes the queue: nothing new is
//! admitted, batchers drain every already-admitted job to a terminal
//! reply, the event loop flushes every reply buffer, and
//! [`ServerHandle::join`] returns once all threads are done.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mtsr_telemetry::WindowedHist;
use zipnet_core::{AdaptPair, FusePolicy, InferExec, InferPlan};

use crate::drift::{holdout_nrmse, TruthOutcome};
use crate::poller::{raw_fd, wake_pair, PollEvent, Poller, Token, WakeReceiver, Waker};
use crate::protocol::{
    write_response, Assembled, FrameAssembler, FrameFatal, InferRequest, InferResponse, Opcode,
    ReloadRequest, Request, RespStatus, Response, ServerInfo, TruthAck, TruthRequest,
};
use crate::queue::{BoundedQueue, Pop, PushError};
use crate::registry::{ModelRegistry, ModelSpec, Planner};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7878"`; port 0 picks a free port.
    pub addr: String,
    /// Bounded queue capacity; requests beyond it are answered `BUSY`.
    pub queue_cap: usize,
    /// Number of batcher threads (executor replicas per hot model).
    pub workers: usize,
    /// Default per-request deadline when the client sends `deadline_ms=0`.
    pub deadline: Duration,
    /// How long a batcher waits after the first popped job for more to
    /// coalesce. Zero disables coalescing waits (first-come batches only).
    pub linger: Duration,
    /// Event-loop wait granularity and batcher pop interval. Also the
    /// worst-case completion latency if a wake datagram is dropped.
    pub poll: Duration,
    /// Maximum simultaneously open connections; excess accepts are
    /// closed immediately (counted as `conns_rejected`).
    pub max_conns: usize,
    /// Online-adaptation parameters; `None` (the default) disables the
    /// drift monitor and `TRUTH` frames are refused.
    pub adapt: Option<AdaptConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            queue_cap: 64,
            workers: 2,
            deadline: Duration::from_secs(2),
            linger: Duration::from_millis(2),
            poll: Duration::from_millis(10),
            max_conns: 4096,
            adapt: None,
        }
    }
}

/// Drift-monitor and fine-tune trigger parameters (per daemon, applied
/// to every registered model).
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Rolling-NRMSE level above which a fine-tune is triggered.
    pub threshold: f32,
    /// Matched pairs in the rolling gauge; the trigger needs a full
    /// window of evidence.
    pub window: usize,
    /// Minimum buffered pairs for the fine-tune corpus (beyond the
    /// holdout) before a trigger can fire.
    pub min_pairs: usize,
    /// Newest matched pairs held out as the promotion gate's
    /// evaluation slice.
    pub holdout: usize,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            threshold: 0.5,
            window: 32,
            min_pairs: 32,
            holdout: 8,
        }
    }
}

/// What a [`Tuner`] hands back: a freshly planned candidate and the
/// checkpoint source it was written to (recorded in the registry on
/// promotion so later reloads and adaptations resume from it).
pub struct TunedModel {
    /// The candidate plan (same geometry as the live slot).
    pub plan: Arc<InferPlan>,
    /// Source string for the registry (a path for the CLI tuner).
    pub source: String,
}

/// Fine-tunes a model from buffered `(input, truth)` pairs — how the
/// daemon turns a drift trigger into a candidate plan. Invoked on a
/// background adaptation thread, never on the event loop or a batcher.
/// Arguments are the model id, its recorded checkpoint source, and the
/// fine-tune corpus.
pub type Tuner = Arc<dyn Fn(u32, &str, &[AdaptPair]) -> io::Result<TunedModel> + Send + Sync>;

/// One admitted inference job, routed by model id.
struct Job {
    /// Connection id (not slot) the reply goes back to.
    conn: u64,
    id: u64,
    model: u32,
    data: Vec<f32>,
    enqueued: Instant,
    deadline: Instant,
}

/// A reply produced off the event loop, waiting to be written into its
/// connection's buffer. `conn == NO_CONN` discards the reply (used by
/// signal-triggered reloads that have no requesting client).
struct Completion {
    conn: u64,
    resp: Response,
}

const NO_CONN: u64 = u64::MAX;

/// Pause reading a connection once its un-flushed reply backlog passes
/// this; resumes when the peer drains it. Per-connection backpressure.
const WRITE_PAUSE: usize = 1 << 20;

/// After a drain has answered everything, how long the event loop keeps
/// polling to flush reply buffers toward peers that stopped reading.
const DRAIN_FLUSH_GRACE: Duration = Duration::from_secs(2);

/// Monotonic counters for the STATUS report. `in_flight` is derived as
/// `admitted - finished`, so it is exact: every admitted job is finished
/// by exactly one terminal reply (OK, TIMEOUT or ERR).
#[derive(Default)]
struct Stats {
    admitted: AtomicU64,
    finished: AtomicU64,
    served: AtomicU64,
    busy: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    conns_accepted: AtomicU64,
    conns_closed: AtomicU64,
    conns_rejected: AtomicU64,
    protocol_errors: AtomicU64,
    reloads_ok: AtomicU64,
    reloads_failed: AtomicU64,
}

struct Shared {
    shutdown: AtomicBool,
    queue: BoundedQueue<Job>,
    stats: Stats,
    registry: ModelRegistry,
    planner: Option<Planner>,
    /// Drift/adaptation parameters; `None` disables `TRUTH` handling.
    adapt: Option<AdaptConfig>,
    /// Fine-tune driver; without it drift is monitored but never acted on.
    tuner: Option<Tuner>,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
    /// Reload and adaptation worker threads, joined by
    /// [`ServerHandle::join`].
    reloaders: Mutex<Vec<JoinHandle<()>>>,
    pending_reloads: AtomicU64,
    /// Server-local latency histogram for STATUS percentiles (all
    /// models), with a windowed shadow reset by every STATUS read.
    /// Kept apart from the process-global telemetry registry
    /// (which tests may reset concurrently); mirrored into the registry
    /// when telemetry is on.
    latency: Mutex<WindowedHist>,
    queue_cap: u32,
    deadline_ms: u32,
    started: Instant,
    poll: Duration,
    linger: Duration,
}

/// Derives the in-flight count from the two monotonic counters.
/// `finished > admitted` cannot happen in a correct server — every
/// `finished` increment is preceded by exactly one `admitted` increment
/// for the same job — so it is asserted in debug builds rather than
/// silently clamped (release builds still clamp so a corrupted STATUS
/// counter cannot wrap to ~2⁶⁴).
fn in_flight_from(admitted: u64, finished: u64) -> u64 {
    debug_assert!(
        finished <= admitted,
        "in_flight underflow: finished {finished} > admitted {admitted}"
    );
    admitted.saturating_sub(finished)
}

impl Shared {
    fn in_flight(&self) -> u64 {
        in_flight_from(
            self.stats.admitted.load(Ordering::SeqCst),
            self.stats.finished.load(Ordering::SeqCst),
        )
    }

    /// Queues a reply for delivery by the event loop and nudges it.
    fn complete(&self, conn: u64, resp: Response) {
        self.completions
            .lock()
            .expect("completions poisoned")
            .push(Completion { conn, resp });
        self.waker.wake();
    }

    /// Terminal reply for an *admitted* job: bumps the terminal counter
    /// then `finished`, so `in_flight` stays exact even if the client is
    /// already gone.
    fn finish(&self, conn: u64, resp: Response, terminal: &AtomicU64) {
        terminal.fetch_add(1, Ordering::SeqCst);
        self.stats.finished.fetch_add(1, Ordering::SeqCst);
        self.complete(conn, resp);
    }

    /// The geometry report for one registered model.
    fn info_for(&self, model: u32) -> Option<ServerInfo> {
        let (generation, plan) = self.registry.current(model)?;
        let fuse = match plan.fuse_policy() {
            FusePolicy::Exact => 0,
            FusePolicy::Folded => 1,
            FusePolicy::Quantized => 2,
        };
        let (ind, outd) = (plan.input_dims(), plan.output_dims());
        Some(ServerInfo {
            model,
            generation,
            model_count: self.registry.len() as u32,
            s: ind[2] as u32,
            h: ind[3] as u32,
            w: ind[4] as u32,
            out_h: outd[2] as u32,
            out_w: outd[3] as u32,
            batch: ind[0] as u32,
            queue_cap: self.queue_cap,
            deadline_ms: self.deadline_ms,
            fuse,
        })
    }

    fn status_text(&self) -> String {
        // Cumulative percentiles describe the whole lifetime; the
        // windowed pair covers exactly the interval since the previous
        // STATUS read (consecutive reads partition the stream).
        let (lat, lat_w) = {
            let mut g = self.latency.lock().expect("latency mutex poisoned");
            (g.cumulative().clone(), g.take_window())
        };
        let s = &self.stats;
        let accepted = s.conns_accepted.load(Ordering::SeqCst);
        let closed = s.conns_closed.load(Ordering::SeqCst);
        let mut text = format!(
            "mtsr-serve status\n\
             uptime_ms: {}\n\
             draining: {}\n\
             queue_depth: {}\n\
             in_flight: {}\n\
             admitted: {}\n\
             served: {}\n\
             busy: {}\n\
             timeouts: {}\n\
             errors: {}\n\
             conns_open: {}\n\
             conns_accepted: {}\n\
             conns_closed: {}\n\
             conns_rejected: {}\n\
             protocol_errors: {}\n\
             reloads_ok: {}\n\
             reloads_failed: {}\n\
             latency_count: {}\n\
             latency_mean_ns: {}\n\
             latency_p50_ns: {}\n\
             latency_p90_ns: {}\n\
             latency_p99_ns: {}\n\
             latency_max_ns: {}\n\
             latency_w_count: {}\n\
             latency_w_mean_ns: {}\n\
             latency_w_p50_ns: {}\n\
             latency_w_p90_ns: {}\n\
             latency_w_p99_ns: {}\n\
             latency_w_max_ns: {}\n\
             models: {}\n",
            self.started.elapsed().as_millis(),
            self.shutdown.load(Ordering::SeqCst),
            self.queue.depth(),
            self.in_flight(),
            s.admitted.load(Ordering::SeqCst),
            s.served.load(Ordering::SeqCst),
            s.busy.load(Ordering::SeqCst),
            s.timeouts.load(Ordering::SeqCst),
            s.errors.load(Ordering::SeqCst),
            accepted.saturating_sub(closed),
            accepted,
            closed,
            s.conns_rejected.load(Ordering::SeqCst),
            s.protocol_errors.load(Ordering::SeqCst),
            s.reloads_ok.load(Ordering::SeqCst),
            s.reloads_failed.load(Ordering::SeqCst),
            lat.count,
            lat.mean() as u64,
            lat.percentile(50.0),
            lat.percentile(90.0),
            lat.percentile(99.0),
            if lat.count == 0 { 0 } else { lat.max },
            lat_w.count,
            lat_w.mean() as u64,
            lat_w.percentile(50.0),
            lat_w.percentile(90.0),
            lat_w.percentile(99.0),
            if lat_w.count == 0 { 0 } else { lat_w.max },
            self.registry.len(),
        );
        for (id, entry) in self.registry.entries().iter().enumerate() {
            let (generation, plan) = self.registry.current(id as u32).expect("entry exists");
            let mst = &entry.stats;
            let (mlat, mlat_w) = {
                let mut g = mst.latency.lock().expect("model latency poisoned");
                (g.cumulative().clone(), g.take_window())
            };
            let (drift, drift_n, pairs) = {
                let mon = entry.drift.lock().expect("drift monitor poisoned");
                (mon.rolling(), mon.samples(), mon.pairs_len())
            };
            text.push_str(&format!(
                "model[{id}]: name={} fuse={} generation={generation} served={} errors={} \
                 timeouts={} reloads={} p50_ns={} p90_ns={} p99_ns={} w_p50_ns={} w_p90_ns={} \
                 w_p99_ns={} drift={drift:.4} drift_n={drift_n} pairs={pairs} truth_ok={} \
                 truth_miss={} adapting={} drift_triggers={} promotions_ok={} \
                 promotions_rejected={}\n",
                entry.name,
                plan.fuse_policy().name(),
                mst.served.load(Ordering::SeqCst),
                mst.errors.load(Ordering::SeqCst),
                mst.timeouts.load(Ordering::SeqCst),
                mst.reloads.load(Ordering::SeqCst),
                mlat.percentile(50.0),
                mlat.percentile(90.0),
                mlat.percentile(99.0),
                mlat_w.percentile(50.0),
                mlat_w.percentile(90.0),
                mlat_w.percentile(99.0),
                mst.truth_matched.load(Ordering::SeqCst),
                mst.truth_unmatched.load(Ordering::SeqCst),
                mst.adapting.load(Ordering::SeqCst),
                mst.drift_triggers.load(Ordering::SeqCst),
                mst.promotions_ok.load(Ordering::SeqCst),
                mst.promotions_rejected.load(Ordering::SeqCst),
            ));
        }
        text
    }

    fn begin_drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        self.waker.wake();
    }

    /// Spawns a background re-plan of `model` from `source`, swapping
    /// the slot on success. The reply (new generation, or ERR) goes to
    /// `conn`/`id` — or nowhere for signal-triggered reloads.
    fn spawn_reload(self: &Arc<Self>, model: u32, source: String, conn: u64, id: u64) {
        let shared = Arc::clone(self);
        self.pending_reloads.fetch_add(1, Ordering::SeqCst);
        let handle = std::thread::Builder::new()
            .name(format!("mtsr-serve-reload{model}"))
            .spawn(move || {
                let planner = shared.planner.as_ref().expect("reload requires planner");
                let resp = match planner(model, &source)
                    .and_then(|plan| shared.registry.swap(model, plan, Some(source)))
                {
                    Ok(generation) => {
                        shared.stats.reloads_ok.fetch_add(1, Ordering::SeqCst);
                        mtsr_telemetry::add_counter("serve.reloads", 1);
                        Response {
                            status: RespStatus::Ok,
                            id,
                            payload: generation.to_le_bytes().to_vec(),
                        }
                    }
                    Err(e) => {
                        shared.stats.reloads_failed.fetch_add(1, Ordering::SeqCst);
                        Response::error(id, format!("reload failed: {e}"))
                    }
                };
                shared.complete(conn, resp);
                shared.pending_reloads.fetch_sub(1, Ordering::SeqCst);
            })
            .expect("spawn reload thread");
        self.reloaders
            .lock()
            .expect("reloaders poisoned")
            .push(handle);
    }

    /// Spawns the background fine-tune → gate → promote sequence for
    /// `model`. Caller has already set the model's `adapting` flag (the
    /// single-flight guard) and bumped `drift_triggers`. The thread is
    /// tracked like a reload worker: a graceful drain waits for it, and
    /// `join` reaps it. The live model keeps serving throughout; a
    /// failed or rejected candidate changes nothing but counters.
    fn spawn_adapt(self: &Arc<Self>, model: u32) {
        let shared = Arc::clone(self);
        self.pending_reloads.fetch_add(1, Ordering::SeqCst);
        let handle = std::thread::Builder::new()
            .name(format!("mtsr-serve-adapt{model}"))
            .spawn(move || {
                let entry = shared.registry.entry(model).expect("model exists");
                let source = entry.source.lock().expect("model source poisoned").clone();
                let (train, held) = entry
                    .drift
                    .lock()
                    .expect("drift monitor poisoned")
                    .take_pairs();
                let tuner = shared.tuner.as_ref().expect("adapt requires tuner");
                let promoted = (|| -> io::Result<u32> {
                    let tuned = tuner(model, &source, &train)?;
                    let (_, live_plan) = shared
                        .registry
                        .current(model)
                        .ok_or_else(|| io::Error::other("model vanished"))?;
                    // The acceptance gate: the candidate must beat the
                    // live plan on the held-out newest pairs, else the
                    // fine-tune is discarded wholesale.
                    let live_score = holdout_nrmse(&live_plan, &held)?;
                    let cand_score = holdout_nrmse(&tuned.plan, &held)?;
                    if cand_score >= live_score {
                        return Err(io::Error::other(format!(
                            "candidate holdout NRMSE {cand_score:.4} does not beat live \
                             {live_score:.4}"
                        )));
                    }
                    shared.registry.swap(model, tuned.plan, Some(tuned.source))
                })();
                match promoted {
                    Ok(_generation) => {
                        shared.stats.reloads_ok.fetch_add(1, Ordering::SeqCst);
                        entry.stats.promotions_ok.fetch_add(1, Ordering::SeqCst);
                        // The gauge and pairs scored the *old* weights;
                        // start clean for the promoted generation.
                        entry.drift.lock().expect("drift monitor poisoned").reset();
                        mtsr_telemetry::add_counter("serve.promotions", 1);
                    }
                    Err(_e) => {
                        entry
                            .stats
                            .promotions_rejected
                            .fetch_add(1, Ordering::SeqCst);
                        // Rejection cooldown: demand a fresh full window
                        // of bad scores before the next attempt.
                        entry
                            .drift
                            .lock()
                            .expect("drift monitor poisoned")
                            .reset_gauge();
                        mtsr_telemetry::add_counter("serve.promotions_rejected", 1);
                    }
                }
                entry.stats.adapting.store(false, Ordering::SeqCst);
                shared.pending_reloads.fetch_sub(1, Ordering::SeqCst);
                shared.waker.wake();
            })
            .expect("spawn adapt thread");
        self.reloaders
            .lock()
            .expect("reloaders poisoned")
            .push(handle);
    }
}

/// Handle to a running [`Server`]; dropping it does **not** stop the
/// daemon — call [`request_shutdown`](Self::request_shutdown) then
/// [`join`](Self::join).
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    event: Option<JoinHandle<()>>,
    batchers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers a graceful drain: stop admitting, answer everything
    /// already admitted, then let every thread exit.
    pub fn request_shutdown(&self) {
        self.shared.begin_drain();
    }

    /// True once a drain has been requested (by any path).
    pub fn draining(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests admitted and not yet answered.
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight()
    }

    /// Atomically swaps a freshly built plan into a model slot without
    /// going over the wire — the programmatic face of hot reload.
    /// Returns the new plan generation.
    pub fn swap_model(
        &self,
        model: u32,
        plan: Arc<InferPlan>,
        source: Option<String>,
    ) -> io::Result<u32> {
        self.shared.registry.swap(model, plan, source)
    }

    /// The current plan generation of a registered model.
    pub fn model_generation(&self, model: u32) -> Option<u32> {
        self.shared.registry.current(model).map(|(g, _)| g)
    }

    /// Blocks until the event loop, every batcher and every reload
    /// worker have exited. Call after
    /// [`request_shutdown`](Self::request_shutdown) (or after a client
    /// sent SHUTDOWN).
    pub fn join(mut self) {
        if let Some(h) = self.event.take() {
            let _ = h.join();
        }
        for h in self.batchers.drain(..) {
            let _ = h.join();
        }
        loop {
            let drained: Vec<_> = {
                let mut g = self.shared.reloaders.lock().expect("reloaders poisoned");
                g.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for h in drained {
                let _ = h.join();
            }
        }
    }
}

/// The daemon constructor; see the module docs for the architecture.
pub struct Server;

impl Server {
    /// Binds `cfg.addr` and starts serving the registered `models`
    /// (each a generator inference plan from
    /// [`zipnet_core::plan_zipnet`], shape `[batch, 1, S, cw, cw]` →
    /// `[batch, 1, fh, fw]`). `planner` enables over-the-wire `RELOAD`
    /// and `SIGHUP` reloads; without it only
    /// [`ServerHandle::swap_model`] can swap plans. Returns once the
    /// listener is live.
    pub fn start(
        cfg: &ServeConfig,
        models: Vec<ModelSpec>,
        planner: Option<Planner>,
    ) -> io::Result<ServerHandle> {
        Server::start_adaptive(cfg, models, planner, None)
    }

    /// [`Server::start`] plus online adaptation: when `cfg.adapt` is set
    /// the daemon pairs `TRUTH` frames with served predictions, tracks a
    /// rolling drift gauge per model, and — when the gauge trips and a
    /// `tuner` is present — fine-tunes in the background and
    /// hot-promotes the candidate through the acceptance gate.
    pub fn start_adaptive(
        cfg: &ServeConfig,
        models: Vec<ModelSpec>,
        planner: Option<Planner>,
        tuner: Option<Tuner>,
    ) -> io::Result<ServerHandle> {
        if cfg.workers == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs at least one worker",
            ));
        }
        let registry = ModelRegistry::new(models)?;
        if let Some(ac) = &cfg.adapt {
            if ac.threshold <= 0.0 || !ac.threshold.is_finite() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "adapt threshold must be a positive finite NRMSE",
                ));
            }
            for entry in registry.entries() {
                entry
                    .drift
                    .lock()
                    .expect("drift monitor poisoned")
                    .configure(ac.window, ac.min_pairs, ac.holdout);
            }
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        let (waker, wake_rx) = wake_pair()?;

        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            queue: BoundedQueue::new(cfg.queue_cap),
            stats: Stats::default(),
            registry,
            planner,
            adapt: cfg.adapt.clone(),
            tuner,
            completions: Mutex::new(Vec::new()),
            waker,
            reloaders: Mutex::new(Vec::new()),
            pending_reloads: AtomicU64::new(0),
            latency: Mutex::new(WindowedHist::new()),
            queue_cap: cfg.queue_cap as u32,
            deadline_ms: cfg.deadline.as_millis() as u32,
            started: Instant::now(),
            poll: cfg.poll,
            linger: cfg.linger,
        });

        let mut batchers = Vec::with_capacity(cfg.workers);
        for wi in 0..cfg.workers {
            let shared = Arc::clone(&shared);
            batchers.push(
                std::thread::Builder::new()
                    .name(format!("mtsr-serve-batch{wi}"))
                    .spawn(move || batcher_loop(&shared))
                    .expect("spawn batcher"),
            );
        }

        let event = {
            let shared = Arc::clone(&shared);
            let max_conns = cfg.max_conns;
            std::thread::Builder::new()
                .name("mtsr-serve-event".into())
                .spawn(move || {
                    let mut ev =
                        EventLoop::new(shared.clone(), listener, poller, wake_rx, max_conns);
                    if let Err(e) = ev.run() {
                        // A dead event loop must still release the
                        // batchers, or join() would hang forever.
                        mtsr_telemetry::add_counter("serve.event_loop_errors", 1);
                        let _ = e;
                        shared.begin_drain();
                    }
                })
                .expect("spawn event loop")
        };

        Ok(ServerHandle {
            shared,
            addr,
            event: Some(event),
            batchers,
        })
    }

    /// Single-tenant convenience: registers `exec`'s plan as model 0
    /// (named `default`) with no reload planner.
    pub fn start_single(cfg: &ServeConfig, exec: InferExec) -> io::Result<ServerHandle> {
        let plan = Arc::clone(exec.plan());
        drop(exec);
        Server::start(
            cfg,
            vec![ModelSpec {
                name: "default".into(),
                source: String::new(),
                plan,
            }],
            None,
        )
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

const TOKEN_LISTENER: Token = u64::MAX;
const TOKEN_WAKE: Token = u64::MAX - 1;

/// One connection's state machine. No thread sleeps on its behalf: all
/// progress happens on readiness events.
struct Conn {
    cid: u64,
    stream: TcpStream,
    asm: FrameAssembler,
    /// Pending reply bytes: `out[out_start..]` is un-flushed.
    out: Vec<u8>,
    out_start: usize,
    /// Peer sent EOF (or shut down its write half); we still flush and
    /// answer everything already admitted before closing.
    read_closed: bool,
    /// Fatal protocol violation: flush the final ERR, then close.
    closing: bool,
    /// Jobs/reloads admitted from this connection not yet answered.
    inflight: u64,
    reg_read: bool,
    reg_write: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_start
    }

    fn queue_reply(&mut self, resp: &Response) {
        write_response(&mut self.out, resp).expect("Vec write is infallible");
    }

    fn paused(&self) -> bool {
        self.pending_out() >= WRITE_PAUSE
    }
}

struct EventLoop {
    shared: Arc<Shared>,
    listener: TcpListener,
    poller: Poller,
    wake_rx: WakeReceiver,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    by_cid: HashMap<u64, usize>,
    next_cid: u64,
    max_conns: usize,
    listener_live: bool,
    drain_flush_started: Option<Instant>,
}

impl EventLoop {
    fn new(
        shared: Arc<Shared>,
        listener: TcpListener,
        poller: Poller,
        wake_rx: WakeReceiver,
        max_conns: usize,
    ) -> EventLoop {
        EventLoop {
            shared,
            listener,
            poller,
            wake_rx,
            conns: Vec::new(),
            free: Vec::new(),
            by_cid: HashMap::new(),
            next_cid: 0,
            max_conns: max_conns.max(1),
            listener_live: false,
            drain_flush_started: None,
        }
    }

    fn run(&mut self) -> io::Result<()> {
        self.poller
            .register(raw_fd(&self.listener), TOKEN_LISTENER, true, false)?;
        self.listener_live = true;
        self.poller
            .register(raw_fd(self.wake_rx.socket()), TOKEN_WAKE, true, false)?;

        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            events.clear();
            self.poller.wait(&mut events, Some(self.shared.poll))?;
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.wake_rx.drain(),
                    token => self.conn_ready(token as usize, ev),
                }
            }
            self.deliver_completions();
            if signals::take_hup() {
                self.reload_all();
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                if self.listener_live {
                    let _ = self.poller.deregister(raw_fd(&self.listener));
                    self.listener_live = false;
                }
                if self.drain_complete() {
                    return Ok(());
                }
            }
        }
    }

    /// During a drain the loop exits once every admitted job and reload
    /// is answered and every reply buffer is flushed — or after a grace
    /// period if some peer stopped reading its replies.
    fn drain_complete(&mut self) -> bool {
        let answered = self.shared.in_flight() == 0
            && self.shared.pending_reloads.load(Ordering::SeqCst) == 0
            && self
                .shared
                .completions
                .lock()
                .expect("completions poisoned")
                .is_empty();
        if !answered {
            return false;
        }
        let started = *self.drain_flush_started.get_or_insert_with(Instant::now);
        let unflushed: Vec<usize> = (0..self.conns.len())
            .filter(|&s| self.conns[s].as_ref().is_some_and(|c| c.pending_out() > 0))
            .collect();
        if unflushed.is_empty() {
            return true;
        }
        for slot in unflushed {
            self.try_flush(slot);
            self.update_interest(slot);
        }
        started.elapsed() >= DRAIN_FLUSH_GRACE
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.shared.shutdown.load(Ordering::SeqCst)
                        || self.by_cid.len() >= self.max_conns
                    {
                        self.shared
                            .stats
                            .conns_rejected
                            .fetch_add(1, Ordering::SeqCst);
                        continue; // stream drops: refused at capacity
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let slot = match self.free.pop() {
                        Some(s) => s,
                        None => {
                            self.conns.push(None);
                            self.conns.len() - 1
                        }
                    };
                    let cid = self.next_cid;
                    self.next_cid += 1;
                    if self
                        .poller
                        .register(raw_fd(&stream), slot as Token, true, false)
                        .is_err()
                    {
                        self.free.push(slot);
                        continue;
                    }
                    self.shared
                        .stats
                        .conns_accepted
                        .fetch_add(1, Ordering::SeqCst);
                    self.by_cid.insert(cid, slot);
                    self.conns[slot] = Some(Conn {
                        cid,
                        stream,
                        asm: FrameAssembler::new(),
                        out: Vec::new(),
                        out_start: 0,
                        read_closed: false,
                        closing: false,
                        inflight: 0,
                        reg_read: true,
                        reg_write: false,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, slot: usize, ev: PollEvent) {
        if self.conns.get(slot).map(Option::is_some) != Some(true) {
            return; // closed earlier in this batch
        }
        if ev.writable && !self.try_flush(slot) {
            return;
        }
        if (ev.readable || ev.hangup) && !self.conn_read(slot) {
            return;
        }
        self.update_interest(slot);
    }

    /// Reads until `WouldBlock`, feeding the frame assembler and
    /// dispatching complete frames. Returns false if the slot closed.
    fn conn_read(&mut self, slot: usize) -> bool {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let conn = self.conns[slot].as_mut().expect("conn checked by caller");
            if conn.closing || conn.read_closed || conn.paused() {
                break;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.asm.push(&buf[..n]);
                    self.process_frames(slot);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot, true);
                    return false;
                }
            }
        }
        // Flush whatever the frames above queued; may close the slot
        // (fatal protocol error with an empty backlog, or a finished
        // half-closed connection).
        self.try_flush(slot)
    }

    fn process_frames(&mut self, slot: usize) {
        loop {
            let conn = self.conns[slot].as_mut().expect("conn alive in read loop");
            match conn.asm.next() {
                Ok(None) => return,
                Ok(Some(Assembled::Frame(req))) => {
                    let shared = Arc::clone(&self.shared);
                    let conn = self.conns[slot].as_mut().expect("conn alive");
                    dispatch(&shared, conn, req);
                }
                Ok(Some(Assembled::UnknownOpcode { op, id })) => {
                    self.shared.stats.errors.fetch_add(1, Ordering::SeqCst);
                    conn.queue_reply(&Response::error(id, format!("unknown opcode {op}")));
                }
                Err(fatal) => {
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::SeqCst);
                    mtsr_telemetry::add_counter("serve.conn_errors", 1);
                    let id = match fatal {
                        FrameFatal::Oversized { id, .. } => id,
                        FrameFatal::BadMagic(_) => 0,
                    };
                    conn.queue_reply(&Response::error(id, fatal.to_string()));
                    conn.closing = true;
                    return;
                }
            }
        }
    }

    /// Writes as much buffered reply data as the socket accepts.
    /// Returns false if the slot closed.
    fn try_flush(&mut self, slot: usize) -> bool {
        loop {
            let conn = self.conns[slot].as_mut().expect("conn checked by caller");
            if conn.pending_out() == 0 {
                break;
            }
            match conn.stream.write(&conn.out[conn.out_start..]) {
                Ok(0) => {
                    self.close_conn(slot, true);
                    return false;
                }
                Ok(n) => {
                    conn.out_start += n;
                    if conn.out_start == conn.out.len() {
                        conn.out.clear();
                        conn.out_start = 0;
                    } else if conn.out_start >= WRITE_PAUSE {
                        conn.out.drain(..conn.out_start);
                        conn.out_start = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot, true);
                    return false;
                }
            }
        }
        let conn = self.conns[slot].as_ref().expect("conn alive after flush");
        let done = conn.pending_out() == 0;
        if done && (conn.closing || (conn.read_closed && conn.inflight == 0)) {
            self.close_conn(slot, false);
            return false;
        }
        true
    }

    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let want_read = !conn.closing && !conn.read_closed && !conn.paused();
        let want_write = conn.pending_out() > 0;
        if (want_read, want_write) != (conn.reg_read, conn.reg_write)
            && self
                .poller
                .reregister(raw_fd(&conn.stream), slot as Token, want_read, want_write)
                .is_ok()
        {
            conn.reg_read = want_read;
            conn.reg_write = want_write;
        }
    }

    fn close_conn(&mut self, slot: usize, errored: bool) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        let _ = self.poller.deregister(raw_fd(&conn.stream));
        self.by_cid.remove(&conn.cid);
        self.free.push(slot);
        self.shared
            .stats
            .conns_closed
            .fetch_add(1, Ordering::SeqCst);
        if errored {
            mtsr_telemetry::add_counter("serve.conn_errors", 1);
        }
        // conn drops here, closing the socket.
    }

    /// Moves batcher/reload replies into their connections' write
    /// buffers and flushes opportunistically.
    fn deliver_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut g = self
                .shared
                .completions
                .lock()
                .expect("completions poisoned");
            std::mem::take(&mut *g)
        };
        if done.is_empty() {
            return;
        }
        let mut touched: Vec<usize> = Vec::with_capacity(done.len());
        for c in done {
            let Some(&slot) = self.by_cid.get(&c.conn) else {
                continue; // client is gone; accounting already closed out
            };
            let conn = self.conns[slot].as_mut().expect("slot maps to live conn");
            conn.inflight = conn.inflight.saturating_sub(1);
            conn.queue_reply(&c.resp);
            touched.push(slot);
        }
        touched.sort_unstable();
        touched.dedup();
        for slot in touched {
            if self.try_flush(slot) {
                self.update_interest(slot);
            }
        }
    }

    /// SIGHUP semantics: re-plan every model from its recorded source.
    fn reload_all(&mut self) {
        if self.shared.planner.is_none() {
            return;
        }
        for (id, entry) in self.shared.registry.entries().iter().enumerate() {
            let source = entry.source.lock().expect("model source poisoned").clone();
            self.shared.spawn_reload(id as u32, source, NO_CONN, 0);
        }
    }
}

/// Handles one complete, well-formed frame on the event loop. Only
/// admission work happens here — anything heavier runs on batcher or
/// reload threads.
fn dispatch(shared: &Arc<Shared>, conn: &mut Conn, req: Request) {
    match req.op {
        Opcode::Info => {
            let model = match req.payload.len() {
                0 => Some(0u32),
                4 => Some(u32::from_le_bytes([
                    req.payload[0],
                    req.payload[1],
                    req.payload[2],
                    req.payload[3],
                ])),
                _ => None,
            };
            let reply = match model.and_then(|m| shared.info_for(m).map(|i| (m, i))) {
                Some((_, info)) => Response {
                    status: RespStatus::Ok,
                    id: req.id,
                    payload: info.encode(),
                },
                None => {
                    shared.stats.errors.fetch_add(1, Ordering::SeqCst);
                    Response::error(
                        req.id,
                        format!(
                            "INFO wants an empty or 4-byte model-id payload naming one of \
                             {} models",
                            shared.registry.len()
                        ),
                    )
                }
            };
            conn.queue_reply(&reply);
        }
        Opcode::Status => {
            conn.queue_reply(&Response {
                status: RespStatus::Ok,
                id: req.id,
                payload: shared.status_text().into_bytes(),
            });
        }
        Opcode::Shutdown => {
            shared.begin_drain();
            conn.queue_reply(&Response::empty(RespStatus::Ok, req.id));
        }
        Opcode::Reload => match ReloadRequest::decode(&req.payload) {
            Err(e) => {
                shared.stats.errors.fetch_add(1, Ordering::SeqCst);
                conn.queue_reply(&Response::error(req.id, e.to_string()));
            }
            Ok(parsed) => {
                if shared.planner.is_none() {
                    shared.stats.errors.fetch_add(1, Ordering::SeqCst);
                    conn.queue_reply(&Response::error(
                        req.id,
                        "this daemon has no reload planner configured",
                    ));
                    return;
                }
                let Some(entry) = shared.registry.entry(parsed.model) else {
                    shared.stats.errors.fetch_add(1, Ordering::SeqCst);
                    conn.queue_reply(&Response::error(
                        req.id,
                        format!(
                            "unknown model id {} ({} registered)",
                            parsed.model,
                            shared.registry.len()
                        ),
                    ));
                    return;
                };
                let source = if parsed.source.is_empty() {
                    entry.source.lock().expect("model source poisoned").clone()
                } else {
                    parsed.source
                };
                conn.inflight += 1;
                shared.spawn_reload(parsed.model, source, conn.cid, req.id);
            }
        },
        Opcode::Truth => observe_truth(shared, conn, &req),
        Opcode::Infer => admit_infer(shared, conn, &req),
    }
}

/// Handles a `TRUTH` frame on the event loop: pair the ground truth
/// with the buffered prediction sharing its id, fold the score into the
/// model's drift gauge, and — when the gauge trips — kick off the
/// background fine-tune. All O(buffer) work; the fine-tune itself runs
/// on its own thread.
fn observe_truth(shared: &Arc<Shared>, conn: &mut Conn, req: &Request) {
    let parsed = match TruthRequest::decode(&req.payload) {
        Ok(p) => p,
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::SeqCst);
            conn.queue_reply(&Response::error(req.id, e.to_string()));
            return;
        }
    };
    let Some(ac) = shared.adapt.as_ref() else {
        shared.stats.errors.fetch_add(1, Ordering::SeqCst);
        conn.queue_reply(&Response::error(
            req.id,
            "online adaptation disabled (start the daemon with --adapt)",
        ));
        return;
    };
    let Some(entry) = shared.registry.entry(parsed.model) else {
        shared.stats.errors.fetch_add(1, Ordering::SeqCst);
        conn.queue_reply(&Response::error(
            req.id,
            format!(
                "unknown model id {} ({} registered)",
                parsed.model,
                shared.registry.len()
            ),
        ));
        return;
    };
    let (outcome, trigger) = {
        let mut mon = entry.drift.lock().expect("drift monitor poisoned");
        let outcome = mon.observe_truth(req.id, &parsed.data);
        let trigger = matches!(outcome, TruthOutcome::Scored { .. })
            && shared.tuner.is_some()
            && mon.should_trigger(ac.threshold);
        (outcome, trigger)
    };
    match outcome {
        TruthOutcome::Unmatched => {
            entry.stats.truth_unmatched.fetch_add(1, Ordering::SeqCst);
            conn.queue_reply(&Response::empty(RespStatus::Ok, req.id));
        }
        TruthOutcome::BadLength { have, want } => {
            shared.stats.errors.fetch_add(1, Ordering::SeqCst);
            entry.stats.errors.fetch_add(1, Ordering::SeqCst);
            conn.queue_reply(&Response::error(
                req.id,
                format!(
                    "TRUTH window has {have} values but prediction {} has {want}",
                    req.id
                ),
            ));
        }
        TruthOutcome::Scored {
            window_nrmse,
            rolling,
        } => {
            entry.stats.truth_matched.fetch_add(1, Ordering::SeqCst);
            mtsr_telemetry::record_gauge("serve.drift_nrmse", f64::from(rolling));
            conn.queue_reply(&Response {
                status: RespStatus::Ok,
                id: req.id,
                payload: TruthAck {
                    window_nrmse,
                    rolling_nrmse: rolling,
                }
                .encode(),
            });
            // Single-flight: only the thread that flips `adapting` may
            // spawn; concurrent triggers on other truths are no-ops.
            if trigger && !entry.stats.adapting.swap(true, Ordering::SeqCst) {
                entry.stats.drift_triggers.fetch_add(1, Ordering::SeqCst);
                mtsr_telemetry::add_counter("serve.drift_triggers", 1);
                shared.spawn_adapt(parsed.model);
            }
        }
    }
}

fn admit_infer(shared: &Arc<Shared>, conn: &mut Conn, req: &Request) {
    let parsed = match InferRequest::decode(&req.payload) {
        Ok(p) => p,
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::SeqCst);
            conn.queue_reply(&Response::error(req.id, e.to_string()));
            return;
        }
    };
    let Some((_, plan)) = shared.registry.current(parsed.model) else {
        shared.stats.errors.fetch_add(1, Ordering::SeqCst);
        conn.queue_reply(&Response::error(
            req.id,
            format!(
                "unknown model id {} ({} registered)",
                parsed.model,
                shared.registry.len()
            ),
        ));
        return;
    };
    let ind = plan.input_dims();
    let (es, eh, ew) = (ind[2] as u32, ind[3] as u32, ind[4] as u32);
    let window_elems: usize = ind[1..].iter().product();
    if (parsed.s, parsed.h, parsed.w) != (es, eh, ew) || parsed.data.len() != window_elems {
        shared.stats.errors.fetch_add(1, Ordering::SeqCst);
        if let Some(entry) = shared.registry.entry(parsed.model) {
            entry.stats.errors.fetch_add(1, Ordering::SeqCst);
        }
        conn.queue_reply(&Response::error(
            req.id,
            format!(
                "window [{}, {}, {}] does not match model {} plan [{es}, {eh}, {ew}]",
                parsed.s, parsed.h, parsed.w, parsed.model
            ),
        ));
        return;
    }
    let now = Instant::now();
    let deadline_ms = if parsed.deadline_ms == 0 {
        shared.deadline_ms
    } else {
        parsed.deadline_ms
    };
    let job = Job {
        conn: conn.cid,
        id: req.id,
        model: parsed.model,
        data: parsed.data,
        enqueued: now,
        deadline: now + Duration::from_millis(u64::from(deadline_ms)),
    };
    match shared.queue.try_push(job) {
        Ok(()) => {
            shared.stats.admitted.fetch_add(1, Ordering::SeqCst);
            conn.inflight += 1;
            mtsr_telemetry::record_gauge("serve.queue_depth", shared.queue.depth() as f64);
        }
        Err(PushError::Full) => {
            shared.stats.busy.fetch_add(1, Ordering::SeqCst);
            mtsr_telemetry::add_counter("serve.busy", 1);
            conn.queue_reply(&Response::empty(RespStatus::Busy, req.id));
        }
        Err(PushError::Closed) => {
            conn.queue_reply(&Response::empty(RespStatus::Draining, req.id));
        }
    }
}

// ---------------------------------------------------------------------------
// Batchers
// ---------------------------------------------------------------------------

/// One batcher's cached executor for one model at one plan generation.
struct CachedExec {
    generation: u32,
    exec: InferExec,
    input: Vec<f32>,
    output: Vec<f32>,
}

fn batcher_loop(shared: &Arc<Shared>) {
    let mut cache: HashMap<u32, CachedExec> = HashMap::new();
    loop {
        let first = match shared.queue.pop(shared.poll) {
            Pop::Item(job) => job,
            Pop::Empty => continue,
            // Closed is only reported once the queue has fully drained,
            // so exiting here completes the graceful-drain contract.
            Pop::Closed => return,
        };
        let model = first.model;
        let Some((generation, plan)) = shared.registry.current(model) else {
            shared.finish(
                first.conn,
                Response::error(first.id, format!("model {model} is not registered")),
                &shared.stats.errors,
            );
            continue;
        };
        // (Re)build the cached executor when this model's plan moved to
        // a new generation — the moment a hot reload becomes visible to
        // this batcher. Geometry is stable across reloads (registry
        // invariant), so buffer sizes never change for a model.
        let entry = cache.entry(model).or_insert_with(|| {
            let exec = InferExec::from_plan(Arc::clone(&plan));
            let in_len: usize = exec.input_dims().iter().product();
            let out_len: usize = exec.output_dims().iter().product();
            CachedExec {
                generation,
                exec,
                input: vec![0.0f32; in_len],
                output: vec![0.0f32; out_len],
            }
        });
        if entry.generation != generation {
            entry.exec = InferExec::from_plan(Arc::clone(&plan));
            entry.generation = generation;
        }
        let batch = entry.exec.input_dims()[0];
        let crop_len: usize = entry.exec.input_dims()[1..].iter().product();
        let win_len: usize = entry.exec.output_dims()[1..].iter().product();
        let (out_h, out_w) = (
            entry.exec.output_dims()[2] as u32,
            entry.exec.output_dims()[3] as u32,
        );

        let mut jobs = vec![first];
        if batch > 1 {
            if !shared.linger.is_zero() && shared.queue.depth() == 0 {
                std::thread::sleep(shared.linger);
            }
            // Same-model top-up only: other tenants' jobs keep their
            // FIFO position for the next worker.
            jobs.extend(shared.queue.drain_matching(batch - 1, |j| j.model == model));
        }

        // Expired jobs are answered TIMEOUT and never occupy a lane.
        let now = Instant::now();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.deadline <= now {
                if let Some(me) = shared.registry.entry(job.model) {
                    me.stats.timeouts.fetch_add(1, Ordering::SeqCst);
                }
                shared.finish(
                    job.conn,
                    Response::empty(RespStatus::Timeout, job.id),
                    &shared.stats.timeouts,
                );
                mtsr_telemetry::add_counter("serve.timeouts", 1);
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }

        for (lane, job) in live.iter().enumerate() {
            entry.input[lane * crop_len..(lane + 1) * crop_len].copy_from_slice(&job.data);
        }
        // Stale data in unfilled tail lanes is harmless: batched kernels
        // are per-sample, and tail outputs are never read.
        let ran = {
            let _t = mtsr_telemetry::span("serve.exec");
            entry.exec.run_into(&entry.input, &mut entry.output)
        };
        match ran {
            Ok(()) => {
                let me = shared.registry.entry(model).expect("model exists");
                for (lane, job) in live.iter().enumerate() {
                    let data = entry.output[lane * win_len..(lane + 1) * win_len].to_vec();
                    // Drift monitoring buffers the served prediction so a
                    // later TRUTH frame with this job's id can score it.
                    if shared.adapt.is_some() {
                        me.drift
                            .lock()
                            .expect("drift monitor poisoned")
                            .record_prediction(job.id, &job.data, &data);
                    }
                    let payload = InferResponse {
                        model,
                        generation,
                        h: out_h,
                        w: out_w,
                        data,
                    }
                    .encode();
                    let ns = job.enqueued.elapsed().as_nanos() as u64;
                    shared
                        .latency
                        .lock()
                        .expect("latency mutex poisoned")
                        .observe(ns);
                    me.observe_latency(ns);
                    me.stats.served.fetch_add(1, Ordering::SeqCst);
                    mtsr_telemetry::record_hist("serve.latency_ns", ns);
                    shared.finish(
                        job.conn,
                        Response {
                            status: RespStatus::Ok,
                            id: job.id,
                            payload,
                        },
                        &shared.stats.served,
                    );
                }
            }
            Err(e) => {
                let me = shared.registry.entry(model).expect("model exists");
                for job in &live {
                    me.stats.errors.fetch_add(1, Ordering::SeqCst);
                    shared.finish(
                        job.conn,
                        Response::error(job.id, format!("inference failed: {e}")),
                        &shared.stats.errors,
                    );
                }
            }
        }
    }
}

/// SIGTERM/SIGINT → graceful drain, SIGHUP → hot reload of every model,
/// with no dependency beyond the libc that std already links. Handlers
/// only store to atomics; the serve binary polls [`triggered`] and the
/// event loop polls [`take_hup`].
///
/// [`triggered`]: signals::triggered
/// [`take_hup`]: signals::take_hup
#[cfg(unix)]
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);
    static HUP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_hup(_signum: i32) {
        HUP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Installs the termination handler for SIGTERM and SIGINT and the
    /// reload handler for SIGHUP.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
            signal(SIGINT, on_term as extern "C" fn(i32) as usize);
            signal(SIGHUP, on_hup as extern "C" fn(i32) as usize);
        }
    }

    /// True once a termination signal has been delivered.
    pub fn triggered() -> bool {
        TERM.load(Ordering::SeqCst)
    }

    /// Consumes a pending SIGHUP, returning true at most once per
    /// delivery — the event loop turns this into a reload of every
    /// registered model from its recorded source.
    pub fn take_hup() -> bool {
        HUP.swap(false, Ordering::SeqCst)
    }

    /// Raises SIGHUP in-process (test hook for the reload path).
    pub fn raise_hup() {
        HUP.store(true, Ordering::SeqCst);
    }
}

/// Portable stub so the serve binary compiles off-unix; signals simply
/// never trigger.
#[cfg(not(unix))]
pub mod signals {
    /// No-op off unix.
    pub fn install() {}

    /// Always false off unix.
    pub fn triggered() -> bool {
        false
    }

    /// Always false off unix.
    pub fn take_hup() -> bool {
        false
    }

    /// No-op off unix.
    pub fn raise_hup() {}
}

#[cfg(test)]
mod tests {
    use super::in_flight_from;

    #[test]
    fn in_flight_is_admitted_minus_finished() {
        assert_eq!(in_flight_from(0, 0), 0);
        assert_eq!(in_flight_from(5, 3), 2);
        assert_eq!(in_flight_from(7, 7), 0);
    }

    /// Regression: an underflow (more jobs finished than admitted) is an
    /// accounting bug and must trip loudly in debug builds instead of
    /// being silently clamped to zero.
    #[test]
    #[should_panic(expected = "in_flight underflow")]
    #[cfg(debug_assertions)]
    fn in_flight_underflow_panics_in_debug() {
        let _ = in_flight_from(1, 2);
    }
}
