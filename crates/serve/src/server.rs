//! The serving daemon: a TCP accept loop feeding a bounded request
//! queue, drained by batcher threads that coalesce compatible windows
//! onto forked [`InferExec`] replicas of one shared
//! [`zipnet_core::InferPlan`].
//!
//! # Lifecycle and threading
//!
//! ```text
//! accept thread ──spawns──▶ per-connection reader ──try_push──▶ BoundedQueue
//!                           per-connection writer ◀──mpsc────── batcher × W
//! ```
//!
//! * The **reader** decodes frames, validates geometry, stamps the
//!   deadline and admits jobs. A full queue is answered `BUSY` on the
//!   spot — admission is the only place load is shed.
//! * Each **batcher** forks the executor (private activation arena, one
//!   shared weight snapshot), pops a first job, lingers briefly to let a
//!   batch coalesce, drops expired jobs with `TIMEOUT` replies and runs
//!   the rest through one executor replay. Batched kernels are
//!   per-sample, so replies are bit-identical regardless of how requests
//!   happened to be grouped.
//! * The **writer** serialises replies for one connection; it exits when
//!   the reader and every in-flight job for that connection have dropped
//!   their reply senders, so a closing client never loses queued replies.
//!
//! Shutdown (SHUTDOWN frame, [`ServerHandle::request_shutdown`], or a
//! signal forwarded by the binary) closes the queue: nothing new is
//! admitted, batchers drain every already-admitted job to a terminal
//! reply, and [`ServerHandle::join`] returns once all threads are done.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mtsr_telemetry::HistStat;
use zipnet_core::InferExec;

use crate::protocol::{
    read_request_after_magic, write_response, InferRequest, InferResponse, Opcode, Request,
    RespStatus, Response, ServerInfo, MAGIC_REQ,
};
use crate::queue::{BoundedQueue, Pop, PushError};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7878"`; port 0 picks a free port.
    pub addr: String,
    /// Bounded queue capacity; requests beyond it are answered `BUSY`.
    pub queue_cap: usize,
    /// Number of batcher threads (executor replicas).
    pub workers: usize,
    /// Default per-request deadline when the client sends `deadline_ms=0`.
    pub deadline: Duration,
    /// How long a batcher waits after the first popped job for more to
    /// coalesce. Zero disables coalescing waits (first-come batches only).
    pub linger: Duration,
    /// Poll interval for interruptible blocking reads/pops.
    pub poll: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            queue_cap: 64,
            workers: 2,
            deadline: Duration::from_secs(2),
            linger: Duration::from_millis(2),
            poll: Duration::from_millis(10),
        }
    }
}

/// One admitted inference job.
struct Job {
    id: u64,
    data: Vec<f32>,
    enqueued: Instant,
    deadline: Instant,
    reply: mpsc::Sender<Response>,
}

/// Monotonic counters for the STATUS report. `in_flight` is derived as
/// `admitted - finished`, so it is exact: every admitted job is finished
/// by exactly one terminal reply (OK, TIMEOUT or ERR).
#[derive(Default)]
struct Stats {
    admitted: AtomicU64,
    finished: AtomicU64,
    served: AtomicU64,
    busy: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
}

struct Shared {
    shutdown: AtomicBool,
    queue: BoundedQueue<Job>,
    stats: Stats,
    /// Server-local latency histogram for STATUS percentiles. Kept apart
    /// from the process-global telemetry registry (which tests may reset
    /// concurrently); mirrored into the registry when telemetry is on.
    latency: Mutex<HistStat>,
    info: ServerInfo,
    started: Instant,
    poll: Duration,
}

impl Shared {
    fn in_flight(&self) -> u64 {
        self.stats
            .admitted
            .load(Ordering::SeqCst)
            .saturating_sub(self.stats.finished.load(Ordering::SeqCst))
    }

    fn finish(&self, job: &Job, resp: Response, terminal: &AtomicU64) {
        terminal.fetch_add(1, Ordering::SeqCst);
        // Ignore send failures: the client hung up, but the job is still
        // accounted as finished so drain and in_flight stay exact.
        let _ = job.reply.send(resp);
        self.stats.finished.fetch_add(1, Ordering::SeqCst);
    }

    fn status_text(&self) -> String {
        let lat = self.latency.lock().expect("latency mutex poisoned").clone();
        let s = &self.stats;
        format!(
            "mtsr-serve status\n\
             uptime_ms: {}\n\
             draining: {}\n\
             queue_depth: {}\n\
             in_flight: {}\n\
             admitted: {}\n\
             served: {}\n\
             busy: {}\n\
             timeouts: {}\n\
             errors: {}\n\
             latency_count: {}\n\
             latency_mean_ns: {}\n\
             latency_p50_ns: {}\n\
             latency_p90_ns: {}\n\
             latency_p99_ns: {}\n\
             latency_max_ns: {}\n",
            self.started.elapsed().as_millis(),
            self.shutdown.load(Ordering::SeqCst),
            self.queue.depth(),
            self.in_flight(),
            s.admitted.load(Ordering::SeqCst),
            s.served.load(Ordering::SeqCst),
            s.busy.load(Ordering::SeqCst),
            s.timeouts.load(Ordering::SeqCst),
            s.errors.load(Ordering::SeqCst),
            lat.count,
            lat.mean() as u64,
            lat.percentile(50.0),
            lat.percentile(90.0),
            lat.percentile(99.0),
            if lat.count == 0 { 0 } else { lat.max },
        )
    }

    fn begin_drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }
}

/// Handle to a running [`Server`]; dropping it does **not** stop the
/// daemon — call [`request_shutdown`](Self::request_shutdown) then
/// [`join`](Self::join).
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    batchers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers a graceful drain: stop admitting, answer everything
    /// already admitted, then let every thread exit.
    pub fn request_shutdown(&self) {
        self.shared.begin_drain();
    }

    /// True once a drain has been requested (by any path).
    pub fn draining(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests admitted and not yet answered.
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight()
    }

    /// Blocks until the accept loop, every batcher and every connection
    /// thread have exited. Call after
    /// [`request_shutdown`](Self::request_shutdown) (or after a client
    /// sent SHUTDOWN).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.batchers.drain(..) {
            let _ = h.join();
        }
        let conns: Vec<_> = {
            let mut g = self.conns.lock().expect("conn list poisoned");
            g.drain(..).collect()
        };
        for h in conns {
            let _ = h.join();
        }
    }
}

/// The daemon constructor; see the module docs for the architecture.
pub struct Server;

impl Server {
    /// Binds `cfg.addr` and starts serving `exec` (a generator inference
    /// plan from [`zipnet_core::plan_zipnet`], shape `[batch, 1, S, cw,
    /// cw]` → `[batch, 1, fh, fw]`). Returns once the listener is live.
    pub fn start(cfg: &ServeConfig, exec: InferExec) -> io::Result<ServerHandle> {
        let in_dims = exec.input_dims();
        let out_dims = exec.output_dims();
        if in_dims.len() != 5 || out_dims.len() != 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "serve needs a generator plan [batch,1,S,h,w] -> [batch,1,fh,fw], \
                     got {in_dims:?} -> {out_dims:?}"
                ),
            ));
        }
        if cfg.workers == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs at least one worker",
            ));
        }
        let info = ServerInfo {
            s: in_dims[2] as u32,
            h: in_dims[3] as u32,
            w: in_dims[4] as u32,
            out_h: out_dims[2] as u32,
            out_w: out_dims[3] as u32,
            batch: in_dims[0] as u32,
            queue_cap: cfg.queue_cap as u32,
            deadline_ms: cfg.deadline.as_millis() as u32,
        };

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            queue: BoundedQueue::new(cfg.queue_cap),
            stats: Stats::default(),
            latency: Mutex::new(HistStat::new()),
            info,
            started: Instant::now(),
            poll: cfg.poll,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut batchers = Vec::with_capacity(cfg.workers);
        for wi in 0..cfg.workers {
            let shared = Arc::clone(&shared);
            let exec = exec.fork();
            let linger = cfg.linger;
            batchers.push(
                std::thread::Builder::new()
                    .name(format!("mtsr-serve-batch{wi}"))
                    .spawn(move || batcher_loop(&shared, exec, linger))
                    .expect("spawn batcher"),
            );
        }
        // The planning executor's arena is dropped here; batchers own
        // their forks and the plan stays alive through them.
        drop(exec);

        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("mtsr-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                .expect("spawn accept loop")
        };

        Ok(ServerHandle {
            shared,
            addr,
            accept: Some(accept),
            batchers,
            conns,
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("mtsr-serve-conn".into())
                    .spawn(move || {
                        if let Err(e) = connection_loop(stream, &shared) {
                            // Protocol violations and peer resets end the
                            // connection, never the daemon.
                            mtsr_telemetry::add_counter("serve.conn_errors", 1);
                            let _ = e;
                        }
                    })
                    .expect("spawn connection thread");
                conns.lock().expect("conn list poisoned").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// A reader that retries timeout-flavoured errors so a frame body can be
/// read to completion on a stream whose read timeout is used only to
/// make the *gap between frames* interruptible.
struct RetryReader<'a>(&'a TcpStream);

impl Read for RetryReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.0.read(buf) {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                other => return other,
            }
        }
    }
}

/// Waits for the next frame's 4 magic bytes, checking the drain flag
/// between read timeouts. `Ok(None)` means clean EOF or drain with no
/// partial frame pending.
fn await_magic(mut stream: &TcpStream, shared: &Shared) -> io::Result<Option<u32>> {
    let mut magic = [0u8; 4];
    let mut got = 0usize;
    loop {
        match stream.read(&mut magic[got..]) {
            Ok(0) => return Ok(None), // peer closed
            Ok(n) => {
                got += n;
                if got == 4 {
                    return Ok(Some(u32::from_le_bytes(magic)));
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Only bail between frames: a half-read magic means the
                // client is mid-send, so keep waiting for the rest.
                if got == 0 && shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.poll))?;
    stream.set_nodelay(true).ok();
    let write_half = stream.try_clone()?;

    let (tx, rx) = mpsc::channel::<Response>();
    let writer = std::thread::Builder::new()
        .name("mtsr-serve-write".into())
        .spawn(move || {
            let mut w = io::BufWriter::new(write_half);
            // Exits when every sender (reader + queued jobs) is gone.
            while let Ok(resp) = rx.recv() {
                if write_response(&mut w, &resp).is_err() {
                    // Peer went away; keep draining so job senders never
                    // block and accounting completes.
                    continue;
                }
            }
        })
        .expect("spawn connection writer");

    let result = reader_loop(&stream, shared, &tx);
    drop(tx);
    let _ = writer.join();
    result
}

fn reader_loop(
    stream: &TcpStream,
    shared: &Arc<Shared>,
    tx: &mpsc::Sender<Response>,
) -> io::Result<()> {
    let expect = shared.info;
    let window_elems = (expect.s * expect.h * expect.w) as usize;
    loop {
        let magic = match await_magic(stream, shared)? {
            Some(m) => m,
            None => return Ok(()),
        };
        if magic != MAGIC_REQ {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad request magic {magic:#010x}"),
            ));
        }
        let req = read_request_after_magic(&mut RetryReader(stream), magic)?;
        match req.op {
            Opcode::Info => {
                let _ = tx.send(Response {
                    status: RespStatus::Ok,
                    id: req.id,
                    payload: shared.info.encode(),
                });
            }
            Opcode::Status => {
                let _ = tx.send(Response {
                    status: RespStatus::Ok,
                    id: req.id,
                    payload: shared.status_text().into_bytes(),
                });
            }
            Opcode::Shutdown => {
                shared.begin_drain();
                let _ = tx.send(Response::empty(RespStatus::Ok, req.id));
            }
            Opcode::Infer => admit_infer(&req, shared, tx, window_elems),
        }
    }
}

fn admit_infer(
    req: &Request,
    shared: &Arc<Shared>,
    tx: &mpsc::Sender<Response>,
    window_elems: usize,
) {
    let parsed = match InferRequest::decode(&req.payload) {
        Ok(p) => p,
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(Response::error(req.id, e.to_string()));
            return;
        }
    };
    let expect = shared.info;
    if (parsed.s, parsed.h, parsed.w) != (expect.s, expect.h, expect.w)
        || parsed.data.len() != window_elems
    {
        shared.stats.errors.fetch_add(1, Ordering::SeqCst);
        let _ = tx.send(Response::error(
            req.id,
            format!(
                "window [{}, {}, {}] does not match the served plan [{}, {}, {}]",
                parsed.s, parsed.h, parsed.w, expect.s, expect.h, expect.w
            ),
        ));
        return;
    }
    let now = Instant::now();
    let deadline_ms = if parsed.deadline_ms == 0 {
        expect.deadline_ms
    } else {
        parsed.deadline_ms
    };
    let job = Job {
        id: req.id,
        data: parsed.data,
        enqueued: now,
        deadline: now + Duration::from_millis(u64::from(deadline_ms)),
        reply: tx.clone(),
    };
    match shared.queue.try_push(job) {
        Ok(()) => {
            shared.stats.admitted.fetch_add(1, Ordering::SeqCst);
            mtsr_telemetry::record_gauge("serve.queue_depth", shared.queue.depth() as f64);
        }
        Err(PushError::Full) => {
            shared.stats.busy.fetch_add(1, Ordering::SeqCst);
            mtsr_telemetry::add_counter("serve.busy", 1);
            let _ = tx.send(Response::empty(RespStatus::Busy, req.id));
        }
        Err(PushError::Closed) => {
            let _ = tx.send(Response::empty(RespStatus::Draining, req.id));
        }
    }
}

fn batcher_loop(shared: &Arc<Shared>, mut exec: InferExec, linger: Duration) {
    let batch = exec.input_dims()[0];
    let crop_len: usize = exec.input_dims()[1..].iter().product();
    let win_len: usize = exec.output_dims()[1..].iter().product();
    let (out_h, out_w) = (shared.info.out_h, shared.info.out_w);
    let mut input = vec![0.0f32; batch * crop_len];
    let mut output = vec![0.0f32; batch * win_len];

    loop {
        let first = match shared.queue.pop(shared.poll) {
            Pop::Item(job) => job,
            Pop::Empty => continue,
            // Closed is only reported once the queue has fully drained,
            // so exiting here completes the graceful-drain contract.
            Pop::Closed => return,
        };
        let mut jobs = vec![first];
        if batch > 1 {
            if !linger.is_zero() && shared.queue.depth() == 0 {
                std::thread::sleep(linger);
            }
            jobs.extend(shared.queue.drain_up_to(batch - 1));
        }

        // Expired jobs are answered TIMEOUT and never occupy a lane.
        let now = Instant::now();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.deadline <= now {
                shared.finish(
                    &job,
                    Response::empty(RespStatus::Timeout, job.id),
                    &shared.stats.timeouts,
                );
                mtsr_telemetry::add_counter("serve.timeouts", 1);
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }

        for (lane, job) in live.iter().enumerate() {
            input[lane * crop_len..(lane + 1) * crop_len].copy_from_slice(&job.data);
        }
        // Stale data in unfilled tail lanes is harmless: batched kernels
        // are per-sample, and tail outputs are never read.
        let ran = {
            let _t = mtsr_telemetry::span("serve.exec");
            exec.run_into(&input, &mut output)
        };
        match ran {
            Ok(()) => {
                for (lane, job) in live.iter().enumerate() {
                    let data = output[lane * win_len..(lane + 1) * win_len].to_vec();
                    let payload = InferResponse {
                        h: out_h,
                        w: out_w,
                        data,
                    }
                    .encode();
                    let ns = job.enqueued.elapsed().as_nanos() as u64;
                    shared
                        .latency
                        .lock()
                        .expect("latency mutex poisoned")
                        .observe(ns);
                    mtsr_telemetry::record_hist("serve.latency_ns", ns);
                    shared.finish(
                        job,
                        Response {
                            status: RespStatus::Ok,
                            id: job.id,
                            payload,
                        },
                        &shared.stats.served,
                    );
                }
            }
            Err(e) => {
                for job in &live {
                    shared.finish(
                        job,
                        Response::error(job.id, format!("inference failed: {e}")),
                        &shared.stats.errors,
                    );
                }
            }
        }
    }
}

/// SIGTERM/SIGINT → graceful drain, with no dependency beyond the libc
/// that std already links. The handler only stores to an atomic; the
/// serve binary polls [`triggered`] and forwards the drain request.
///
/// [`triggered`]: signals::triggered
#[cfg(unix)]
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Installs the termination handler for SIGTERM and SIGINT.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
            signal(SIGINT, on_term as extern "C" fn(i32) as usize);
        }
    }

    /// True once a termination signal has been delivered.
    pub fn triggered() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

/// Portable stub so the serve binary compiles off-unix; signals simply
/// never trigger.
#[cfg(not(unix))]
pub mod signals {
    /// No-op off unix.
    pub fn install() {}

    /// Always false off unix.
    pub fn triggered() -> bool {
        false
    }
}
