//! Client side of the serve protocol: a low-level [`ServeClient`] for
//! single requests and a [`RemotePredictor`] that reproduces
//! [`InferSession::predict_frame`] over the network, bit for bit.
//!
//! Bit-identity is by construction, not luck: the predictor crops
//! windows with the *same* [`zipnet_core::pipeline::crop_coarse`]
//! routine, the daemon replays the *same* shared plan with per-sample
//! batched kernels, and reassembly feeds the *same* origin order through
//! a [`ReassemblePlan`] — the f64 accumulation order (the only
//! order-sensitive arithmetic in the path) is therefore identical to a
//! local run at any worker count or batch grouping.
//!
//! [`InferSession::predict_frame`]: zipnet_core::pipeline::InferSession

use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mtsr_tensor::Tensor;
use mtsr_traffic::augment::ReassemblePlan;
use zipnet_core::pipeline::crop_coarse;

use crate::protocol::{
    read_response, write_request, InferRequest, InferResponse, Opcode, ReloadRequest, RespStatus,
    Response, ServerInfo, TruthAck, TruthRequest,
};

/// Terminal outcome of one INFER request.
#[derive(Debug, Clone, PartialEq)]
pub enum InferOutcome {
    /// Served; carries the fine-grained window.
    Ok(InferResponse),
    /// Shed at admission — the queue was full. Retry later.
    Busy,
    /// Admitted but expired in the queue before execution.
    Timeout,
    /// The daemon is draining and admits nothing new.
    Draining,
    /// Rejected or failed; carries the server's message.
    Err(String),
}

/// A blocking protocol client over one TCP connection. Requests carry
/// client-chosen ids, so callers may pipeline via [`send_infer`] /
/// [`recv`] and match replies by id.
///
/// [`send_infer`]: ServeClient::send_infer
/// [`recv`]: ServeClient::recv
pub struct ServeClient {
    stream: TcpStream,
    next_id: u64,
}

impl ServeClient {
    /// Connects to a serving daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(ServeClient { stream, next_id: 0 })
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// The id the most recent single-shot request (e.g. [`infer`]) went
    /// out under — what a later [`truth`] submission must reuse to pair
    /// with that prediction.
    ///
    /// [`infer`]: ServeClient::infer
    /// [`truth`]: ServeClient::truth
    pub fn last_id(&self) -> u64 {
        self.next_id
    }

    fn roundtrip(&mut self, op: Opcode, payload: &[u8]) -> io::Result<Response> {
        let id = self.fresh_id();
        write_request(&mut self.stream, op, id, payload)?;
        let resp = read_response(&mut self.stream)?;
        if resp.id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {} for request id {id}", resp.id),
            ));
        }
        Ok(resp)
    }

    /// Fetches the daemon's planned geometry for model 0.
    pub fn info(&mut self) -> io::Result<ServerInfo> {
        self.info_for(0)
    }

    /// Fetches the planned geometry of one registered model.
    pub fn info_for(&mut self, model: u32) -> io::Result<ServerInfo> {
        let resp = self.roundtrip(Opcode::Info, &model.to_le_bytes())?;
        expect_ok(&resp, "INFO")?;
        ServerInfo::decode(&resp.payload)
    }

    /// Asks the daemon to hot-reload one model from `source` (empty =
    /// the model's recorded checkpoint source). Blocks until the swap
    /// completes; returns the new plan generation.
    pub fn reload(&mut self, model: u32, source: &str) -> io::Result<u32> {
        let payload = ReloadRequest {
            model,
            source: source.to_string(),
        }
        .encode();
        let resp = self.roundtrip(Opcode::Reload, &payload)?;
        expect_ok(&resp, "RELOAD")?;
        if resp.payload.len() != 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "RELOAD reply should carry the 4-byte new generation",
            ));
        }
        Ok(u32::from_le_bytes([
            resp.payload[0],
            resp.payload[1],
            resp.payload[2],
            resp.payload[3],
        ]))
    }

    /// Fetches the plaintext status report.
    pub fn status(&mut self) -> io::Result<String> {
        let resp = self.roundtrip(Opcode::Status, &[])?;
        expect_ok(&resp, "STATUS")?;
        String::from_utf8(resp.payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Asks the daemon to drain gracefully.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let resp = self.roundtrip(Opcode::Shutdown, &[])?;
        expect_ok(&resp, "SHUTDOWN")
    }

    /// Submits one window and waits for its terminal reply.
    pub fn infer(&mut self, req: &InferRequest) -> io::Result<InferOutcome> {
        let resp = self.roundtrip(Opcode::Infer, &req.encode())?;
        outcome_of(resp)
    }

    /// Pipelining half: submits one window under a caller-chosen id
    /// without waiting.
    pub fn send_infer(&mut self, id: u64, req: &InferRequest) -> io::Result<()> {
        write_request(&mut self.stream, Opcode::Infer, id, &req.encode())
    }

    /// Submits the later-arriving fine-grained ground truth for the
    /// earlier `INFER` whose id was `infer_id` (see
    /// [`last_id`](ServeClient::last_id), or the caller-chosen id from
    /// [`send_infer`](ServeClient::send_infer)). Returns `Some(ack)`
    /// when the daemon still held that prediction and scored the pair,
    /// `None` when it was unmatched (late, evicted, or never served).
    pub fn truth(&mut self, infer_id: u64, req: &TruthRequest) -> io::Result<Option<TruthAck>> {
        write_request(&mut self.stream, Opcode::Truth, infer_id, &req.encode())?;
        let resp = read_response(&mut self.stream)?;
        if resp.id != infer_id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {} for TRUTH request id {infer_id}", resp.id),
            ));
        }
        expect_ok(&resp, "TRUTH")?;
        if resp.payload.is_empty() {
            Ok(None)
        } else {
            TruthAck::decode(&resp.payload).map(Some)
        }
    }

    /// Pipelining half: receives the next reply, whichever request it
    /// answers (the daemon replies in completion order).
    pub fn recv(&mut self) -> io::Result<(u64, InferOutcome)> {
        let resp = read_response(&mut self.stream)?;
        let id = resp.id;
        Ok((id, outcome_of(resp)?))
    }
}

fn expect_ok(resp: &Response, what: &str) -> io::Result<()> {
    if resp.status == RespStatus::Ok {
        Ok(())
    } else {
        Err(io::Error::other(format!(
            "{what} answered {:?}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.payload)
        )))
    }
}

fn outcome_of(resp: Response) -> io::Result<InferOutcome> {
    Ok(match resp.status {
        RespStatus::Ok => InferOutcome::Ok(InferResponse::decode(&resp.payload)?),
        RespStatus::Busy => InferOutcome::Busy,
        RespStatus::Timeout => InferOutcome::Timeout,
        RespStatus::Draining => InferOutcome::Draining,
        RespStatus::Err => InferOutcome::Err(String::from_utf8_lossy(&resp.payload).into_owned()),
    })
}

/// Full-frame prediction over the wire: crops the same sliding windows a
/// local [`zipnet_core::pipeline::InferSession`] would, streams them to
/// the daemon with bounded in-flight pipelining (retrying `BUSY` and
/// `TIMEOUT` — both are explicit load-shedding, not failures), and
/// reassembles replies in origin order for a bit-identical frame.
pub struct RemotePredictor {
    client: ServeClient,
    model: u32,
    info: ServerInfo,
    probe: usize,
    origins: Vec<(usize, usize)>,
    plan: ReassemblePlan,
    max_inflight: usize,
    retry_pause: Duration,
}

impl RemotePredictor {
    /// Builds a predictor from the fine-grid geometry of the frame being
    /// reconstructed: `origins` and `window` exactly as reported by the
    /// local session ([`InferSession::origins`] / [`InferSession::window`]),
    /// `grid` the fine frame side and `probe` the upscale factor. Fetches
    /// the daemon's [`ServerInfo`] and checks it matches the geometry.
    ///
    /// [`InferSession::origins`]: zipnet_core::pipeline::InferSession::origins
    /// [`InferSession::window`]: zipnet_core::pipeline::InferSession::window
    pub fn new(
        client: ServeClient,
        origins: Vec<(usize, usize)>,
        window: usize,
        grid: usize,
        probe: usize,
    ) -> io::Result<RemotePredictor> {
        RemotePredictor::for_model(client, 0, origins, window, grid, probe)
    }

    /// Like [`new`](Self::new) but routed to one tenant of a
    /// multi-model daemon: geometry is validated against — and every
    /// request stamped with — `model`.
    pub fn for_model(
        mut client: ServeClient,
        model: u32,
        origins: Vec<(usize, usize)>,
        window: usize,
        grid: usize,
        probe: usize,
    ) -> io::Result<RemotePredictor> {
        let info = client.info_for(model)?;
        let cw = window / probe;
        if info.h as usize != cw || info.w as usize != cw || info.out_h as usize != window {
            return Err(io::Error::other(format!(
                "daemon serves [{}, {}, {}] -> [{}, {}], local geometry wants \
                 [S, {cw}, {cw}] -> [{window}, {window}]",
                info.s, info.h, info.w, info.out_h, info.out_w
            )));
        }
        let plan = ReassemblePlan::new(&origins, window, grid)
            .map_err(|e| io::Error::other(e.to_string()))?;
        let max_inflight = (info.queue_cap as usize).clamp(1, 8);
        Ok(RemotePredictor {
            client,
            model,
            info,
            probe,
            origins,
            plan,
            max_inflight,
            retry_pause: Duration::from_millis(2),
        })
    }

    /// The daemon geometry this predictor validated against.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Caps concurrently outstanding requests (min 1). Keeping this at or
    /// below the daemon's queue capacity avoids guaranteed `BUSY` churn.
    pub fn set_max_inflight(&mut self, n: usize) {
        self.max_inflight = n.max(1);
    }

    /// Gives the connection back (e.g. to send SHUTDOWN afterwards).
    pub fn into_client(self) -> ServeClient {
        self.client
    }

    /// Predicts the full fine-grained frame from a normalized coarse
    /// stack `[S, sq, sq]`, row-major — the remote counterpart of
    /// [`InferSession::predict_frame`], bit-identical for equal inputs.
    ///
    /// [`InferSession::predict_frame`]: zipnet_core::pipeline::InferSession::predict_frame
    pub fn predict_frame(&mut self, coarse: &[f32], sq: usize) -> io::Result<Tensor> {
        let (s, cw) = (self.info.s as usize, self.info.h as usize);
        if coarse.len() != s * sq * sq || sq < cw {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "coarse stack of {} values does not match [S={s}, sq={sq}] (cw={cw})",
                    coarse.len()
                ),
            ));
        }
        let win_len = (self.info.out_h * self.info.out_w) as usize;
        let mut results: Vec<Option<Vec<f32>>> = vec![None; self.origins.len()];
        let mut to_send: VecDeque<usize> = (0..self.origins.len()).collect();
        let mut crop = vec![0.0f32; s * cw * cw];
        let mut inflight = 0usize;
        let mut done = 0usize;

        while done < self.origins.len() {
            while inflight < self.max_inflight {
                let Some(i) = to_send.pop_front() else { break };
                let (y0, x0) = self.origins[i];
                crop_coarse(
                    coarse,
                    s,
                    sq,
                    (y0 / self.probe, x0 / self.probe),
                    cw,
                    &mut crop,
                );
                let req = InferRequest {
                    model: self.model,
                    deadline_ms: 0,
                    s: self.info.s,
                    h: self.info.h,
                    w: self.info.w,
                    data: crop.clone(),
                };
                self.client.send_infer(i as u64, &req)?;
                inflight += 1;
            }
            let (id, outcome) = self.client.recv()?;
            inflight -= 1;
            let i = id as usize;
            if i >= self.origins.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("daemon answered unknown request id {id}"),
                ));
            }
            match outcome {
                InferOutcome::Ok(resp) => {
                    if resp.data.len() != win_len || results[i].is_some() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("malformed or duplicate reply for window {i}"),
                        ));
                    }
                    results[i] = Some(resp.data);
                    done += 1;
                }
                // Explicit shedding: back off briefly and resubmit.
                InferOutcome::Busy | InferOutcome::Timeout => {
                    to_send.push_back(i);
                    std::thread::sleep(self.retry_pause);
                }
                InferOutcome::Draining => {
                    return Err(io::Error::other("daemon is draining"));
                }
                InferOutcome::Err(msg) => {
                    return Err(io::Error::other(format!("window {i} failed: {msg}")));
                }
            }
        }

        // Origin order, exactly like the local session's reassembly loop.
        self.plan.begin();
        for (i, &origin) in self.origins.iter().enumerate() {
            let data = results[i].as_ref().expect("all windows resolved");
            self.plan
                .add_window(origin, data)
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        self.plan
            .finish()
            .map_err(|e| io::Error::other(e.to_string()))
    }
}
