//! Readiness polling for the event-loop front-end, `std`-only in the
//! same spirit as [`crate::server::signals`]: the only platform surface
//! used is the libc std already links, declared with small `extern "C"`
//! bindings instead of an external crate.
//!
//! Three backends behind one API:
//!
//! * **Linux** — `epoll(7)`: O(ready) wakeups, which is what lets one
//!   thread hold thousands of idle probe connections.
//! * **Other unix** — `poll(2)`: O(registered) scans, same semantics.
//! * **Elsewhere** — a stub whose [`Poller::new`] reports the platform
//!   unsupported; the rest of the crate (protocol, queue, client) stays
//!   fully portable.
//!
//! The [`Waker`]/[`WakeReceiver`] pair is a connected loopback UDP
//! socket pair (pure `std`): batcher threads send a byte to pull the
//! event loop out of its wait when a completion is ready. Wakes may
//! coalesce or drop under extreme pressure, so the event loop also
//! bounds its wait with a timeout and drains completions every
//! iteration — a waker is a latency optimisation, never a correctness
//! dependency.

use std::io;
use std::net::UdpSocket;

/// Identifies one registered event source in [`PollEvent`]s.
pub type Token = u64;

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the source was registered under.
    pub token: Token,
    /// The source is readable (or has an EOF/error to report via read).
    pub readable: bool,
    /// The source is writable.
    pub writable: bool,
    /// Peer hangup or error; a read will surface the exact condition.
    pub hangup: bool,
}

#[cfg(unix)]
pub use self::unix::{raw_fd, Poller, SockFd};

#[cfg(not(unix))]
pub use self::stub::{raw_fd, Poller, SockFd};

#[cfg(unix)]
mod unix {
    use std::time::Duration;

    /// A raw socket descriptor as the poller sees it.
    pub type SockFd = std::os::unix::io::RawFd;

    /// The raw descriptor of any socket-like std type.
    pub fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> SockFd {
        t.as_raw_fd()
    }

    fn timeout_ms(timeout: Option<Duration>) -> i32 {
        match timeout {
            // Clamped to [1ms, 60s]: sub-millisecond waits must not spin.
            Some(d) => i32::try_from(d.as_millis().clamp(1, 60_000)).unwrap_or(60_000),
            None => -1,
        }
    }

    #[cfg(target_os = "linux")]
    pub use linux::Poller;

    #[cfg(target_os = "linux")]
    mod linux {
        use super::super::{PollEvent, Token};
        use std::io;
        use std::time::Duration;

        // x86-64 is the one ABI where the kernel packs epoll_event.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        struct EpollEvent {
            events: u32,
            data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
            fn close(fd: i32) -> i32;
        }

        const EPOLL_CTL_ADD: i32 = 1;
        const EPOLL_CTL_DEL: i32 = 2;
        const EPOLL_CTL_MOD: i32 = 3;
        const EPOLLIN: u32 = 0x001;
        const EPOLLOUT: u32 = 0x004;
        const EPOLLERR: u32 = 0x008;
        const EPOLLHUP: u32 = 0x010;
        const EPOLLRDHUP: u32 = 0x2000;
        const EPOLL_CLOEXEC: i32 = 0o2000000;

        /// The Linux epoll backend.
        pub struct Poller {
            epfd: i32,
            buf: Vec<EpollEvent>,
        }

        impl Poller {
            /// Creates the epoll instance.
            pub fn new() -> io::Result<Poller> {
                let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(Poller {
                    epfd,
                    buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
                })
            }

            fn ctl(&self, op: i32, fd: i32, mut ev: EpollEvent) -> io::Result<()> {
                if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }

            fn mask(readable: bool, writable: bool) -> u32 {
                let mut m = EPOLLRDHUP;
                if readable {
                    m |= EPOLLIN;
                }
                if writable {
                    m |= EPOLLOUT;
                }
                m
            }

            /// Starts watching `fd` under `token`.
            pub fn register(
                &mut self,
                fd: i32,
                token: Token,
                readable: bool,
                writable: bool,
            ) -> io::Result<()> {
                self.ctl(
                    EPOLL_CTL_ADD,
                    fd,
                    EpollEvent {
                        events: Self::mask(readable, writable),
                        data: token,
                    },
                )
            }

            /// Changes the interest set of a registered `fd`.
            pub fn reregister(
                &mut self,
                fd: i32,
                token: Token,
                readable: bool,
                writable: bool,
            ) -> io::Result<()> {
                self.ctl(
                    EPOLL_CTL_MOD,
                    fd,
                    EpollEvent {
                        events: Self::mask(readable, writable),
                        data: token,
                    },
                )
            }

            /// Stops watching `fd`.
            pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
                self.ctl(EPOLL_CTL_DEL, fd, EpollEvent { events: 0, data: 0 })
            }

            /// Waits for readiness, appending to `out`. A timeout or an
            /// interrupted wait simply yields no events.
            pub fn wait(
                &mut self,
                out: &mut Vec<PollEvent>,
                timeout: Option<Duration>,
            ) -> io::Result<()> {
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        super::timeout_ms(timeout),
                    )
                };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(e);
                }
                for ev in &self.buf[..n as usize] {
                    let bits = ev.events;
                    out.push(PollEvent {
                        token: ev.data,
                        readable: bits & EPOLLIN != 0,
                        writable: bits & EPOLLOUT != 0,
                        hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    });
                }
                Ok(())
            }
        }

        impl Drop for Poller {
            fn drop(&mut self) {
                unsafe {
                    close(self.epfd);
                }
            }
        }
    }

    #[cfg(not(target_os = "linux"))]
    pub use portable::Poller;

    #[cfg(not(target_os = "linux"))]
    mod portable {
        use super::super::{PollEvent, Token};
        use std::io;
        use std::time::Duration;

        #[repr(C)]
        #[derive(Clone, Copy)]
        struct PollFd {
            fd: i32,
            events: i16,
            revents: i16,
        }

        extern "C" {
            fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        }

        const POLLIN: i16 = 0x001;
        const POLLOUT: i16 = 0x004;
        const POLLERR: i16 = 0x008;
        const POLLHUP: i16 = 0x010;

        /// The portable `poll(2)` backend for non-Linux unix.
        pub struct Poller {
            fds: Vec<PollFd>,
            tokens: Vec<Token>,
        }

        impl Poller {
            /// Creates an empty registration table.
            pub fn new() -> io::Result<Poller> {
                Ok(Poller {
                    fds: Vec::new(),
                    tokens: Vec::new(),
                })
            }

            fn events(readable: bool, writable: bool) -> i16 {
                (if readable { POLLIN } else { 0 }) | (if writable { POLLOUT } else { 0 })
            }

            /// Starts watching `fd` under `token`.
            pub fn register(
                &mut self,
                fd: i32,
                token: Token,
                readable: bool,
                writable: bool,
            ) -> io::Result<()> {
                self.fds.push(PollFd {
                    fd,
                    events: Self::events(readable, writable),
                    revents: 0,
                });
                self.tokens.push(token);
                Ok(())
            }

            /// Changes the interest set of a registered `fd`.
            pub fn reregister(
                &mut self,
                fd: i32,
                token: Token,
                readable: bool,
                writable: bool,
            ) -> io::Result<()> {
                for (p, t) in self.fds.iter_mut().zip(&mut self.tokens) {
                    if p.fd == fd {
                        p.events = Self::events(readable, writable);
                        *t = token;
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }

            /// Stops watching `fd`.
            pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
                if let Some(i) = self.fds.iter().position(|p| p.fd == fd) {
                    self.fds.swap_remove(i);
                    self.tokens.swap_remove(i);
                    Ok(())
                } else {
                    Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
                }
            }

            /// Waits for readiness, appending to `out`.
            pub fn wait(
                &mut self,
                out: &mut Vec<PollEvent>,
                timeout: Option<Duration>,
            ) -> io::Result<()> {
                let n = unsafe {
                    poll(
                        self.fds.as_mut_ptr(),
                        self.fds.len() as u64,
                        super::timeout_ms(timeout),
                    )
                };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(e);
                }
                for (p, &t) in self.fds.iter().zip(&self.tokens) {
                    if p.revents != 0 {
                        out.push(PollEvent {
                            token: t,
                            readable: p.revents & POLLIN != 0,
                            writable: p.revents & POLLOUT != 0,
                            hangup: p.revents & (POLLERR | POLLHUP) != 0,
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(not(unix))]
mod stub {
    use super::{PollEvent, Token};
    use std::io;
    use std::time::Duration;

    /// Placeholder descriptor type off unix.
    pub type SockFd = i32;

    /// No raw descriptors off unix; the stub poller never runs.
    pub fn raw_fd<T>(_t: &T) -> SockFd {
        0
    }

    /// Stub backend: construction fails, so [`crate::server::Server`]
    /// reports the platform unsupported instead of failing to compile.
    pub struct Poller;

    impl Poller {
        /// Always fails off unix.
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the event-loop server requires a unix platform (epoll/poll)",
            ))
        }

        /// Unreachable off unix.
        pub fn register(
            &mut self,
            _fd: SockFd,
            _token: Token,
            _readable: bool,
            _writable: bool,
        ) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable off unix.
        pub fn reregister(
            &mut self,
            _fd: SockFd,
            _token: Token,
            _readable: bool,
            _writable: bool,
        ) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable off unix.
        pub fn deregister(&mut self, _fd: SockFd) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable off unix.
        pub fn wait(
            &mut self,
            _out: &mut Vec<PollEvent>,
            _timeout: Option<Duration>,
        ) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
    }
}

/// The sending half of the event-loop wake channel; clone-free and
/// callable from any thread via `&self`.
pub struct Waker {
    tx: UdpSocket,
}

impl Waker {
    /// Nudges the event loop out of its wait. Best-effort: a dropped
    /// datagram only costs one poll-timeout of latency.
    pub fn wake(&self) {
        let _ = self.tx.send(&[1]);
    }
}

/// The receiving half, registered in the [`Poller`].
pub struct WakeReceiver {
    rx: UdpSocket,
}

impl WakeReceiver {
    /// The socket to register for readability.
    pub fn socket(&self) -> &UdpSocket {
        &self.rx
    }

    /// Swallows all pending wake bytes.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while self.rx.recv(&mut buf).is_ok() {}
    }
}

/// Builds a connected loopback UDP pair used as the wake channel.
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    let rx = UdpSocket::bind(("127.0.0.1", 0))?;
    let tx = UdpSocket::bind(("127.0.0.1", 0))?;
    tx.connect(rx.local_addr()?)?;
    // Guard against stray datagrams: only the tx half may deliver.
    rx.connect(tx.local_addr()?)?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}
