//! Golden-file regression test for the [`TelemetryReport`] schema, plus
//! the disabled-registry guarantee.
//!
//! `golden_report.json` is the committed byte-exact serialization of
//! [`fixture_report`]. Any change to the JSON schema — field names,
//! ordering, number formatting — fails this test; intentional changes
//! must bump [`SCHEMA_VERSION`] and regenerate the fixture (the failure
//! message explains how).

use mtsr_telemetry::{
    EpochRecord, HistStat, PhaseReport, Snapshot, SpanStat, TelemetryReport, SCHEMA_VERSION,
};

const GOLDEN: &str = include_str!("golden_report.json");

/// A report exercising every schema feature: both Algorithm-1 phases,
/// present and absent optional fields, spans, counters and gauges.
fn fixture_report() -> TelemetryReport {
    let mut r = TelemetryReport::new(vec![
        ("command".into(), "train".into()),
        ("instance".into(), "up4".into()),
        ("seed".into(), "42".into()),
    ]);
    r.phases.push(PhaseReport {
        name: "pretrain".into(),
        steps: 2,
        wall_ms: 21.5,
        epochs: vec![
            EpochRecord {
                step: 0,
                g_loss: 1.5,
                g_grad_norm: Some(3.25),
                wall_ms: 11.0,
                ..Default::default()
            },
            EpochRecord {
                step: 1,
                g_loss: 0.875,
                g_grad_norm: Some(2.5),
                wall_ms: 10.5,
                ..Default::default()
            },
        ],
    });
    r.phases.push(PhaseReport {
        name: "adversarial".into(),
        steps: 1,
        wall_ms: 14.0,
        epochs: vec![EpochRecord {
            step: 0,
            g_loss: 0.75,
            d_loss: Some(1.375),
            d_real_mean: Some(0.5625),
            d_fake_mean: Some(0.4375),
            g_grad_norm: Some(2.0),
            d_grad_norm: Some(0.5),
            wall_ms: 14.0,
        }],
    });
    let mut latency = HistStat::new();
    for v in [45_000u64, 52_000, 61_000, 250_000, 900_000] {
        latency.observe(v);
    }
    r.attach_snapshot(&Snapshot {
        counters: vec![
            ("tensor.im2col2d.calls".into(), 96),
            ("tensor.im2col3d.calls".into(), 64),
        ],
        gauges: vec![("train.final_mse".into(), 0.75)],
        hists: vec![("serve.latency_ns".into(), latency)],
        spans: vec![
            (
                "layer.Conv3d.forward".into(),
                SpanStat {
                    count: 6,
                    total_ns: 1_800_000,
                    min_ns: 250_000,
                    max_ns: 400_000,
                },
            ),
            (
                "tensor.sgemm".into(),
                SpanStat {
                    count: 24,
                    total_ns: 1_200_000,
                    min_ns: 40_000,
                    max_ns: 80_000,
                },
            ),
        ],
    });
    r
}

/// Rewrites the fixture after an intentional schema change:
/// `cargo test -p mtsr-telemetry --test golden -- --ignored regenerate`
#[test]
#[ignore = "writes tests/golden_report.json; run manually after schema changes"]
fn regenerate_golden_file() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_report.json");
    std::fs::write(path, fixture_report().to_json_string()).unwrap();
}

#[test]
fn serialization_matches_golden_file() {
    let produced = fixture_report().to_json_string();
    assert_eq!(
        produced, GOLDEN,
        "TelemetryReport serialization drifted from crates/telemetry/tests/golden_report.json.\n\
         If the schema change is intentional: bump SCHEMA_VERSION in src/report.rs and\n\
         regenerate the fixture from this test's `fixture_report()` output."
    );
}

#[test]
fn golden_file_parses_back_to_fixture() {
    let parsed = TelemetryReport::from_json_str(GOLDEN).expect("golden file parses");
    assert_eq!(parsed, fixture_report());
}

#[test]
fn golden_file_declares_current_schema_version() {
    let parsed = TelemetryReport::from_json_str(GOLDEN).unwrap();
    // from_json_str already rejects other versions; this pins the fixture
    // to the constant so a version bump forces regeneration.
    let text = format!("\"schema_version\": {SCHEMA_VERSION}");
    assert!(GOLDEN.contains(&text), "fixture predates {SCHEMA_VERSION}");
    assert!(!parsed.phases.is_empty());
}

/// With the registry disabled (the default), counters, gauges and spans
/// all record nothing — the guarantee that makes instrumented hot paths
/// free in production runs.
#[test]
fn disabled_registry_records_nothing() {
    // Runs in its own test binary, but keep the registry state change
    // scoped in one test so parallel test threads cannot interleave.
    mtsr_telemetry::set_enabled(false);
    mtsr_telemetry::reset();
    mtsr_telemetry::add_counter("golden.counter", 3);
    mtsr_telemetry::record_gauge("golden.gauge", 1.5);
    mtsr_telemetry::record_span_ns("golden.span", 1_000);
    mtsr_telemetry::record_hist("golden.hist", 1_000);
    assert!(mtsr_telemetry::span("golden.scoped").is_none());
    assert!(mtsr_telemetry::span_owned("golden.owned".into()).is_none());
    assert!(mtsr_telemetry::layer_span("Dense", "forward").is_none());
    let snap = mtsr_telemetry::snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.spans.is_empty());
    assert!(snap.hists.is_empty());

    let mut report = TelemetryReport::new(vec![("command".into(), "eval".into())]);
    report.attach_snapshot(&snap);
    let back = TelemetryReport::from_json_str(&report.to_json_string()).unwrap();
    assert!(back.spans.is_empty() && back.counters.is_empty() && back.gauges.is_empty());
}
