//! # mtsr-telemetry
//!
//! Observability substrate for the MTSR stack. Three pieces:
//!
//! * a process-global **metrics registry** — counters, gauges and span
//!   timers — guarded by a single atomic flag so that disabled telemetry
//!   costs one relaxed load and performs **no allocation** on any hot
//!   path ([`enabled`], [`registry`]);
//! * RAII **scoped timers** ([`span()`], [`layer_span`]) used to instrument
//!   the hot kernels (`sgemm`, im2col, conv2d/conv3d) and every layer's
//!   forward/backward pass;
//! * the **[`TelemetryReport`]** JSON schema — a stable, machine-readable
//!   record of a training/inference run (per-epoch losses, per-phase
//!   wall-clock, kernel span statistics) that perf PRs diff against as a
//!   baseline. Serialization is hand-rolled ([`json`]) so the crate has
//!   zero dependencies and builds offline.
//!
//! The crate sits below `mtsr-tensor` in the dependency graph: everything
//! above it (tensor kernels, nn layers, the GAN trainer, the `mtsr`
//! binary) records into the same registry.

pub mod json;
pub mod registry;
pub mod report;
pub mod span;

pub use json::Json;
pub use registry::{
    add_counter, enabled, record_gauge, record_hist, record_span_ns, reset, set_enabled, snapshot,
    HistStat, Snapshot, SpanStat, WindowedHist,
};
pub use report::{
    EpochRecord, HistReport, PhaseReport, SpanReport, TelemetryReport, SCHEMA_VERSION,
};
pub use span::{layer_span, span, span_owned, SpanGuard};
