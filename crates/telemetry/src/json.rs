//! Minimal JSON value, writer and parser — just enough for the
//! [`crate::TelemetryReport`] schema, with zero dependencies.
//!
//! Objects preserve insertion order (they are `Vec<(String, Json)>`), so
//! serialization is deterministic: the same report always produces the
//! same bytes. Numbers are written with Rust's shortest-round-trip float
//! formatting and parse back bit-exactly; non-finite numbers serialize as
//! `null` (JSON has no NaN/∞).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialises with two-space indentation (stable byte-for-byte for a
    /// given value).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns a message describing the first
    /// syntax error (with byte offset) on failure.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'[') => parse_array(b, pos),
        Some(b'{') => parse_object(b, pos),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or(format!("bad codepoint {code:#x}"))?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        pairs.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_value_kinds() {
        let v = Json::Obj(vec![
            ("null".into(), Json::Null),
            ("flag".into(), Json::Bool(true)),
            ("int".into(), Json::Num(42.0)),
            ("neg".into(), Json::Num(-0.125)),
            ("sci".into(), Json::Num(6.02e23)),
            (
                "text".into(),
                Json::Str("a \"quoted\"\n\tline \\ with λ".into()),
            ),
            (
                "arr".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Bool(false), Json::Null]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for &f in &[
            0.1f64,
            1.0 / 3.0,
            1e-300,
            123_456_789.123_456_79,
            f64::MIN_POSITIVE,
        ] {
            let text = Json::Num(f).pretty();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), f.to_bits(), "{f}");
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": [1, 2], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn deterministic_serialization() {
        let v = Json::Obj(vec![
            ("z".into(), Json::Num(1.0)),
            ("a".into(), Json::Num(2.0)),
        ]);
        assert_eq!(v.pretty(), v.pretty());
        // Insertion order preserved, not sorted.
        let text = v.pretty();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }
}
