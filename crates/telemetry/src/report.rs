//! The stable [`TelemetryReport`] JSON schema.
//!
//! A report captures one training/inference run: run metadata, per-phase
//! training telemetry (Algorithm 1's pre-training and adversarial
//! phases), kernel/layer span statistics, and the raw counters/gauges.
//! Benches and perf PRs treat the serialized form as a machine-readable
//! baseline (`BENCH_*.json`-compatible: flat, stable field names,
//! deterministic ordering), so schema changes must bump
//! [`SCHEMA_VERSION`] and keep the golden-file regression test in
//! `crates/telemetry/tests/golden.rs` in sync.
//!
//! Fields split into **timing** (wall-clock and span durations — vary
//! run-to-run) and **non-timing** (losses, counts, metadata — identical
//! across reruns with the same seed). [`TelemetryReport::strip_timing`]
//! zeroes the former so determinism checks can compare whole reports.

use crate::json::Json;
use crate::registry::Snapshot;

/// Version of the serialized schema; bump on any field change.
/// v2 added the `hists` section (log₂-bucketed latency distributions).
pub const SCHEMA_VERSION: u64 = 2;

/// Telemetry for one optimisation step (pre-training step or adversarial
/// outer iteration).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EpochRecord {
    /// Step index within its phase (0-based).
    pub step: u64,
    /// Generator objective for this step: pre-training MSE (Eq. 10) or
    /// the adversarial generator loss (Eq. 9 / Eq. 8).
    pub g_loss: f64,
    /// Discriminator loss (Eq. 5 BCE, real + fake); adversarial phase only.
    pub d_loss: Option<f64>,
    /// Mean of `D(real)` over the step's batch; adversarial phase only.
    pub d_real_mean: Option<f64>,
    /// Mean of `D(G(input))` over the step's batch; adversarial phase only.
    pub d_fake_mean: Option<f64>,
    /// Global gradient norm of the generator after backward.
    pub g_grad_norm: Option<f64>,
    /// Global gradient norm of the discriminator after backward.
    pub d_grad_norm: Option<f64>,
    /// Wall-clock duration of the step in milliseconds (timing field).
    pub wall_ms: f64,
}

/// One training phase (e.g. `"pretrain"`, `"adversarial"`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseReport {
    /// Phase name.
    pub name: String,
    /// Number of steps executed.
    pub steps: u64,
    /// Phase wall-clock in milliseconds (timing field).
    pub wall_ms: f64,
    /// Per-step records, in execution order.
    pub epochs: Vec<EpochRecord>,
}

/// Aggregated scoped-timer statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanReport {
    /// Span name (e.g. `tensor.conv2d.forward`, `layer.Conv2d.backward`).
    pub name: String,
    /// Completed span count (non-timing: deterministic per run).
    pub count: u64,
    /// Total nanoseconds (timing field).
    pub total_ns: u64,
    /// Mean nanoseconds per span (timing field).
    pub mean_ns: f64,
    /// Minimum nanoseconds (timing field).
    pub min_ns: u64,
    /// Maximum nanoseconds (timing field).
    pub max_ns: u64,
}

/// Percentile summary of one histogram ([`crate::registry::HistStat`]).
/// The report keeps the summary, not the raw buckets: percentiles are
/// what the serve STATUS endpoint and perf baselines consume, and they
/// stay stable when the bucket layout evolves.
#[derive(Debug, Clone, PartialEq)]
pub struct HistReport {
    /// Histogram name (e.g. `serve.latency_ns`).
    pub name: String,
    /// Number of observed samples (non-timing: deterministic per run).
    pub count: u64,
    /// Minimum observed sample (timing field).
    pub min: u64,
    /// Estimated 50th percentile (timing field).
    pub p50: u64,
    /// Estimated 90th percentile (timing field).
    pub p90: u64,
    /// Estimated 99th percentile (timing field).
    pub p99: u64,
    /// Maximum observed sample (timing field).
    pub max: u64,
}

/// A full run report — see the module docs for schema stability rules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// Run metadata as ordered `(key, value)` pairs (command, seed, …).
    pub run: Vec<(String, String)>,
    /// Training phases in execution order.
    pub phases: Vec<PhaseReport>,
    /// Name-sorted span statistics.
    pub spans: Vec<SpanReport>,
    /// Name-sorted counters.
    pub counters: Vec<(String, u64)>,
    /// Name-sorted gauges.
    pub gauges: Vec<(String, f64)>,
    /// Name-sorted histogram summaries.
    pub hists: Vec<HistReport>,
}

impl TelemetryReport {
    /// Creates an empty report with the given metadata pairs.
    pub fn new(run: Vec<(String, String)>) -> Self {
        TelemetryReport {
            run,
            ..Default::default()
        }
    }

    /// Folds a registry [`Snapshot`] into the report (spans, counters,
    /// gauges).
    pub fn attach_snapshot(&mut self, snap: &Snapshot) {
        self.spans = snap
            .spans
            .iter()
            .map(|(name, s)| SpanReport {
                name: name.clone(),
                count: s.count,
                total_ns: s.total_ns,
                mean_ns: s.total_ns as f64 / s.count.max(1) as f64,
                min_ns: s.min_ns,
                max_ns: s.max_ns,
            })
            .collect();
        self.counters = snap.counters.clone();
        self.gauges = snap.gauges.clone();
        self.hists = snap
            .hists
            .iter()
            .map(|(name, h)| HistReport {
                name: name.clone(),
                count: h.count,
                min: if h.count == 0 { 0 } else { h.min },
                p50: h.percentile(50.0),
                p90: h.percentile(90.0),
                p99: h.percentile(99.0),
                max: h.max,
            })
            .collect();
    }

    /// Zeroes every timing field (wall-clock, span durations) so that two
    /// same-seed runs compare equal on the deterministic remainder.
    pub fn strip_timing(&mut self) {
        for p in &mut self.phases {
            p.wall_ms = 0.0;
            for e in &mut p.epochs {
                e.wall_ms = 0.0;
            }
        }
        for s in &mut self.spans {
            s.total_ns = 0;
            s.mean_ns = 0.0;
            s.min_ns = 0;
            s.max_ns = 0;
        }
        for h in &mut self.hists {
            h.min = 0;
            h.p50 = 0;
            h.p90 = 0;
            h.p99 = 0;
            h.max = 0;
        }
    }

    /// Serialises to the stable JSON form.
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
            (
                "run".into(),
                Json::Obj(
                    self.run
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "phases".into(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(p.name.clone())),
                                ("steps".into(), Json::Num(p.steps as f64)),
                                ("wall_ms".into(), Json::Num(p.wall_ms)),
                                (
                                    "epochs".into(),
                                    Json::Arr(
                                        p.epochs
                                            .iter()
                                            .map(|e| {
                                                Json::Obj(vec![
                                                    ("step".into(), Json::Num(e.step as f64)),
                                                    ("g_loss".into(), Json::Num(e.g_loss)),
                                                    ("d_loss".into(), opt(e.d_loss)),
                                                    ("d_real_mean".into(), opt(e.d_real_mean)),
                                                    ("d_fake_mean".into(), opt(e.d_fake_mean)),
                                                    ("g_grad_norm".into(), opt(e.g_grad_norm)),
                                                    ("d_grad_norm".into(), opt(e.d_grad_norm)),
                                                    ("wall_ms".into(), Json::Num(e.wall_ms)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "spans".into(),
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(s.name.clone())),
                                ("count".into(), Json::Num(s.count as f64)),
                                ("total_ns".into(), Json::Num(s.total_ns as f64)),
                                ("mean_ns".into(), Json::Num(s.mean_ns)),
                                ("min_ns".into(), Json::Num(s.min_ns as f64)),
                                ("max_ns".into(), Json::Num(s.max_ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "hists".into(),
                Json::Arr(
                    self.hists
                        .iter()
                        .map(|h| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(h.name.clone())),
                                ("count".into(), Json::Num(h.count as f64)),
                                ("min".into(), Json::Num(h.min as f64)),
                                ("p50".into(), Json::Num(h.p50 as f64)),
                                ("p90".into(), Json::Num(h.p90 as f64)),
                                ("p99".into(), Json::Num(h.p99 as f64)),
                                ("max".into(), Json::Num(h.max as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Serialises to the pretty JSON string written by `mtsr --telemetry`.
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().pretty();
        s.push('\n');
        s
    }

    /// Parses a report serialized by [`Self::to_json_string`]. Rejects
    /// unknown schema versions.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = Json::parse(text)?;
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let str_pairs = |key: &str| -> Result<Vec<(String, String)>, String> {
            match v.get(key) {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, val)| {
                        val.as_str()
                            .map(|s| (k.clone(), s.to_string()))
                            .ok_or(format!("{key}.{k} is not a string"))
                    })
                    .collect(),
                _ => Err(format!("missing object `{key}`")),
            }
        };
        let opt_f64 = |v: &Json, key: &str| -> Result<Option<f64>, String> {
            match v.get(key) {
                Some(Json::Null) | None => Ok(None),
                Some(j) => j.as_f64().map(Some).ok_or(format!("{key} not a number")),
            }
        };
        let req_f64 = |v: &Json, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("missing number `{key}`"))
        };
        let req_u64 = |v: &Json, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("missing integer `{key}`"))
        };
        let req_str = |v: &Json, key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("missing string `{key}`"))
        };

        let mut phases = Vec::new();
        for p in v
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or("missing array `phases`")?
        {
            let mut epochs = Vec::new();
            for e in p
                .get("epochs")
                .and_then(Json::as_arr)
                .ok_or("missing array `epochs`")?
            {
                epochs.push(EpochRecord {
                    step: req_u64(e, "step")?,
                    g_loss: req_f64(e, "g_loss")?,
                    d_loss: opt_f64(e, "d_loss")?,
                    d_real_mean: opt_f64(e, "d_real_mean")?,
                    d_fake_mean: opt_f64(e, "d_fake_mean")?,
                    g_grad_norm: opt_f64(e, "g_grad_norm")?,
                    d_grad_norm: opt_f64(e, "d_grad_norm")?,
                    wall_ms: req_f64(e, "wall_ms")?,
                });
            }
            phases.push(PhaseReport {
                name: req_str(p, "name")?,
                steps: req_u64(p, "steps")?,
                wall_ms: req_f64(p, "wall_ms")?,
                epochs,
            });
        }

        let mut spans = Vec::new();
        for s in v
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("missing array `spans`")?
        {
            spans.push(SpanReport {
                name: req_str(s, "name")?,
                count: req_u64(s, "count")?,
                total_ns: req_u64(s, "total_ns")?,
                mean_ns: req_f64(s, "mean_ns")?,
                min_ns: req_u64(s, "min_ns")?,
                max_ns: req_u64(s, "max_ns")?,
            });
        }

        let mut hists = Vec::new();
        for h in v
            .get("hists")
            .and_then(Json::as_arr)
            .ok_or("missing array `hists`")?
        {
            hists.push(HistReport {
                name: req_str(h, "name")?,
                count: req_u64(h, "count")?,
                min: req_u64(h, "min")?,
                p50: req_u64(h, "p50")?,
                p90: req_u64(h, "p90")?,
                p99: req_u64(h, "p99")?,
                max: req_u64(h, "max")?,
            });
        }

        let counters = match v.get("counters") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_u64()
                        .map(|u| (k.clone(), u))
                        .ok_or(format!("counters.{k} is not an integer"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing object `counters`".into()),
        };
        let gauges = match v.get("gauges") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_f64()
                        .map(|f| (k.clone(), f))
                        .ok_or(format!("gauges.{k} is not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing object `gauges`".into()),
        };

        Ok(TelemetryReport {
            run: str_pairs("run")?,
            phases,
            spans,
            counters,
            gauges,
            hists,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SpanStat;

    fn sample_report() -> TelemetryReport {
        let mut r = TelemetryReport::new(vec![
            ("command".into(), "train".into()),
            ("seed".into(), "42".into()),
        ]);
        r.phases.push(PhaseReport {
            name: "pretrain".into(),
            steps: 2,
            wall_ms: 12.5,
            epochs: vec![
                EpochRecord {
                    step: 0,
                    g_loss: 0.9,
                    wall_ms: 6.0,
                    ..Default::default()
                },
                EpochRecord {
                    step: 1,
                    g_loss: 0.7,
                    g_grad_norm: Some(1.25),
                    wall_ms: 6.5,
                    ..Default::default()
                },
            ],
        });
        r.phases.push(PhaseReport {
            name: "adversarial".into(),
            steps: 1,
            wall_ms: 8.0,
            epochs: vec![EpochRecord {
                step: 0,
                g_loss: 0.8,
                d_loss: Some(1.38),
                d_real_mean: Some(0.51),
                d_fake_mean: Some(0.49),
                g_grad_norm: Some(2.0),
                d_grad_norm: Some(0.5),
                wall_ms: 8.0,
            }],
        });
        let mut hist = crate::registry::HistStat::new();
        for v in [800, 900, 1_000, 4_000] {
            hist.observe(v);
        }
        let snap = Snapshot {
            counters: vec![("tensor.im2col2d.calls".into(), 7)],
            gauges: vec![("train.final_mse".into(), 0.7)],
            spans: vec![(
                "tensor.sgemm".into(),
                SpanStat {
                    count: 4,
                    total_ns: 4000,
                    min_ns: 900,
                    max_ns: 1200,
                },
            )],
            hists: vec![("serve.latency_ns".into(), hist)],
        };
        r.attach_snapshot(&snap);
        r
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let r = sample_report();
        let text = r.to_json_string();
        let back = TelemetryReport::from_json_str(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn strip_timing_zeroes_only_timing_fields() {
        let mut r = sample_report();
        r.strip_timing();
        assert_eq!(r.phases[0].wall_ms, 0.0);
        assert_eq!(r.phases[0].epochs[1].wall_ms, 0.0);
        assert_eq!(r.spans[0].total_ns, 0);
        // Non-timing fields survive.
        assert_eq!(r.phases[0].epochs[1].g_loss, 0.7);
        assert_eq!(r.spans[0].count, 4);
        assert_eq!(r.counters[0].1, 7);
        assert_eq!(r.hists[0].p50, 0);
        assert_eq!(r.hists[0].count, 4);
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let r = sample_report();
        let text = r.to_json_string().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 999",
        );
        assert!(TelemetryReport::from_json_str(&text).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(TelemetryReport::from_json_str("{}").is_err());
        assert!(TelemetryReport::from_json_str("not json").is_err());
        assert!(TelemetryReport::from_json_str(r#"{"schema_version": 1}"#).is_err());
    }
}
