//! RAII scoped timers.
//!
//! ```
//! {
//!     let _s = mtsr_telemetry::span("tensor.sgemm");
//!     // ... hot kernel ...
//! } // duration recorded here (if telemetry is enabled)
//! ```
//!
//! When telemetry is disabled the constructors return `None` without
//! allocating or reading the clock, so holding `Option<SpanGuard>` in a
//! binding is free on the disabled path.

use crate::registry::{enabled, record_span_ns};
use std::time::Instant;

enum SpanName {
    Static(&'static str),
    Owned(String),
}

impl SpanName {
    fn as_str(&self) -> &str {
        match self {
            SpanName::Static(s) => s,
            SpanName::Owned(s) => s,
        }
    }
}

/// Live scoped timer; records its elapsed time into the registry on drop.
pub struct SpanGuard {
    name: SpanName,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        record_span_ns(self.name.as_str(), ns);
    }
}

/// Starts a span with a static name. Returns `None` (no clock read, no
/// allocation) when telemetry is disabled.
#[inline]
pub fn span(name: &'static str) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    Some(SpanGuard {
        name: SpanName::Static(name),
        start: Instant::now(),
    })
}

/// Starts a span with a computed name. The `String` is only built by the
/// caller when telemetry is enabled — pair with [`crate::enabled`] or use
/// [`layer_span`].
#[inline]
pub fn span_owned(name: String) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    Some(SpanGuard {
        name: SpanName::Owned(name),
        start: Instant::now(),
    })
}

/// Span for one direction of one layer's pass, named
/// `layer.<name>.<dir>` (e.g. `layer.Conv2d.forward`). The name string is
/// only formatted when telemetry is enabled.
#[inline]
pub fn layer_span(layer: &str, dir: &'static str) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    span_owned(format!("layer.{layer}.{dir}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_none() {
        crate::registry::set_enabled(false);
        assert!(span("x").is_none());
        assert!(layer_span("L", "forward").is_none());
    }
}
