//! The process-global metrics registry.
//!
//! All recording functions are gated on one relaxed [`AtomicBool`] load:
//! when telemetry is disabled (the default) they return before touching
//! the registry mutex or allocating, so instrumented hot paths pay a
//! single predictable branch. When enabled, metrics accumulate under a
//! [`Mutex`] — contention only matters while actively measuring, and a
//! simple lock keeps the recorded numbers easy to reason about.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Aggregate statistics for one named span (scoped timer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Sum of span durations in nanoseconds.
    pub total_ns: u64,
    /// Shortest observed span.
    pub min_ns: u64,
    /// Longest observed span.
    pub max_ns: u64,
}

impl SpanStat {
    fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }
}

#[derive(Default)]
struct Inner {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    spans: HashMap<String, SpanStat>,
}

fn registry() -> &'static Mutex<Inner> {
    static REGISTRY: OnceLock<Mutex<Inner>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Inner::default()))
}

/// Turns telemetry collection on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when telemetry collection is active. One relaxed atomic load —
/// this is the entire disabled-path cost of every instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Increments a named counter by `by`. No-op (and no allocation) when
/// telemetry is disabled.
#[inline]
pub fn add_counter(name: &str, by: u64) {
    if !enabled() {
        return;
    }
    let mut r = registry().lock().expect("telemetry registry poisoned");
    match r.counters.get_mut(name) {
        Some(v) => *v += by,
        None => {
            r.counters.insert(name.to_string(), by);
        }
    }
}

/// Sets a named gauge to its latest value. No-op when disabled.
#[inline]
pub fn record_gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut r = registry().lock().expect("telemetry registry poisoned");
    match r.gauges.get_mut(name) {
        Some(v) => *v = value,
        None => {
            r.gauges.insert(name.to_string(), value);
        }
    }
}

/// Folds one span duration into the named span's statistics. Called by
/// [`crate::span::SpanGuard`] on drop; callers normally use
/// [`crate::span`] instead.
#[inline]
pub fn record_span_ns(name: &str, ns: u64) {
    if !enabled() {
        return;
    }
    let mut r = registry().lock().expect("telemetry registry poisoned");
    match r.spans.get_mut(name) {
        Some(s) => s.observe(ns),
        None => {
            r.spans.insert(
                name.to_string(),
                SpanStat {
                    count: 1,
                    total_ns: ns,
                    min_ns: ns,
                    max_ns: ns,
                },
            );
        }
    }
}

/// A point-in-time copy of the registry, sorted by name so that two runs
/// recording the same events produce identical orderings.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, stats)` spans, name-sorted.
    pub spans: Vec<(String, SpanStat)>,
}

/// Copies the current registry contents out (works whether or not
/// collection is still enabled).
pub fn snapshot() -> Snapshot {
    let r = registry().lock().expect("telemetry registry poisoned");
    let mut counters: Vec<_> = r.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let mut gauges: Vec<_> = r.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let mut spans: Vec<_> = r.spans.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot {
        counters,
        gauges,
        spans,
    }
}

/// Clears all recorded metrics (the enabled flag is left untouched).
pub fn reset() {
    let mut r = registry().lock().expect("telemetry registry poisoned");
    r.counters.clear();
    r.gauges.clear();
    r.spans.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry state is process-global, so the unit tests here run inside
    // one #[test] to avoid cross-test interference under the parallel test
    // runner. (Integration tests that need the registry use their own
    // process.)
    #[test]
    fn registry_lifecycle() {
        // Disabled: recording is a no-op.
        set_enabled(false);
        add_counter("t.c", 3);
        record_gauge("t.g", 1.5);
        record_span_ns("t.s", 100);
        let s = snapshot();
        assert!(s.counters.iter().all(|(k, _)| k != "t.c"));
        assert!(s.gauges.iter().all(|(k, _)| k != "t.g"));
        assert!(s.spans.iter().all(|(k, _)| k != "t.s"));

        // Enabled: values accumulate and snapshots are sorted.
        set_enabled(true);
        add_counter("t.b", 1);
        add_counter("t.a", 2);
        add_counter("t.a", 3);
        record_gauge("t.g", 2.5);
        record_gauge("t.g", 3.5);
        record_span_ns("t.s", 10);
        record_span_ns("t.s", 30);
        let s = snapshot();
        let names: Vec<&str> = s
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("t."))
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(names, vec!["t.a", "t.b"]);
        assert_eq!(
            s.counters.iter().find(|(k, _)| k == "t.a").unwrap().1,
            5
        );
        assert_eq!(s.gauges.iter().find(|(k, _)| k == "t.g").unwrap().1, 3.5);
        let span = &s.spans.iter().find(|(k, _)| k == "t.s").unwrap().1;
        assert_eq!(span.count, 2);
        assert_eq!(span.total_ns, 40);
        assert_eq!(span.min_ns, 10);
        assert_eq!(span.max_ns, 30);

        // Reset clears everything but keeps the flag.
        reset();
        assert!(enabled());
        assert!(snapshot().counters.is_empty());
        set_enabled(false);
    }
}
