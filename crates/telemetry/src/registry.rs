//! The process-global metrics registry.
//!
//! All recording functions are gated on one relaxed [`AtomicBool`] load:
//! when telemetry is disabled (the default) they return before touching
//! the registry mutex or allocating, so instrumented hot paths pay a
//! single predictable branch. When enabled, metrics accumulate under a
//! [`Mutex`] — contention only matters while actively measuring, and a
//! simple lock keeps the recorded numbers easy to reason about.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Aggregate statistics for one named span (scoped timer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Sum of span durations in nanoseconds.
    pub total_ns: u64,
    /// Shortest observed span.
    pub min_ns: u64,
    /// Longest observed span.
    pub max_ns: u64,
}

impl SpanStat {
    fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }
}

/// Fixed-size log₂-bucketed histogram for latency-style `u64` samples
/// (nanoseconds, bytes, queue depths …).
///
/// Bucket 0 counts zero-valued samples; bucket `i ≥ 1` counts samples
/// with `2^(i-1) <= v < 2^i`, so 65 buckets cover the whole `u64` range
/// with a worst-case 2× quantile resolution — plenty for rolling p50/p99
/// service latencies, and cheap enough (no allocation, O(1) observe) to
/// sit on a request hot path under a mutex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistStat {
    /// Number of observed samples.
    pub count: u64,
    /// Sum of all samples.
    pub total: u64,
    /// Smallest observed sample.
    pub min: u64,
    /// Largest observed sample.
    pub max: u64,
    /// Log₂ bucket counts (see the type docs for the bucket bounds).
    pub buckets: [u64; 65],
}

impl Default for HistStat {
    fn default() -> Self {
        HistStat {
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl HistStat {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample value.
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Folds one sample into the histogram.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Estimates the `p`-th percentile (`0 < p <= 100`): the upper bound
    /// of the bucket holding the rank-`⌈p·count/100⌉` sample, clamped to
    /// the observed `[min, max]`. Exact to within one power of two; 0 for
    /// an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i is 2^i - 1 (bucket 0 holds 0);
                // computed as (2^(i-1) - 1)·2 + 1 to avoid overflow at i=64.
                let ub = if i == 0 {
                    0
                } else {
                    ((1u64 << (i - 1)) - 1) * 2 + 1
                };
                return ub.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of all observed samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }
}

/// A cumulative histogram paired with a resettable *window* histogram
/// over the same sample stream.
///
/// Long-lived services (the `mtsr-serve` STATUS endpoint) need both
/// views: lifetime percentiles answer "how has this server behaved",
/// but after days of uptime they are history-dominated and hide what
/// is happening *now*. `observe` folds every sample into both
/// histograms; [`WindowedHist::take_window`] hands out the samples seen
/// since the previous take and starts a fresh window, so consecutive
/// reads partition the stream exactly (no sample is counted in two
/// windows, none is lost).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowedHist {
    cumulative: HistStat,
    window: HistStat,
}

impl WindowedHist {
    /// An empty pair of histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one sample into both the cumulative and the window view.
    pub fn observe(&mut self, v: u64) {
        self.cumulative.observe(v);
        self.window.observe(v);
    }

    /// The lifetime histogram (all samples since construction).
    pub fn cumulative(&self) -> &HistStat {
        &self.cumulative
    }

    /// Returns the histogram of samples observed since the previous
    /// `take_window` (or construction) and resets the window.
    pub fn take_window(&mut self) -> HistStat {
        std::mem::take(&mut self.window)
    }

    /// The current window without resetting it (tests, debugging).
    pub fn window(&self) -> &HistStat {
        &self.window
    }
}

#[derive(Default)]
struct Inner {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    spans: HashMap<String, SpanStat>,
    hists: HashMap<String, HistStat>,
}

fn registry() -> &'static Mutex<Inner> {
    static REGISTRY: OnceLock<Mutex<Inner>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Inner::default()))
}

/// Turns telemetry collection on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when telemetry collection is active. One relaxed atomic load —
/// this is the entire disabled-path cost of every instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Increments a named counter by `by`. No-op (and no allocation) when
/// telemetry is disabled.
#[inline]
pub fn add_counter(name: &str, by: u64) {
    if !enabled() {
        return;
    }
    let mut r = registry().lock().expect("telemetry registry poisoned");
    match r.counters.get_mut(name) {
        Some(v) => *v += by,
        None => {
            r.counters.insert(name.to_string(), by);
        }
    }
}

/// Sets a named gauge to its latest value. No-op when disabled.
#[inline]
pub fn record_gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut r = registry().lock().expect("telemetry registry poisoned");
    match r.gauges.get_mut(name) {
        Some(v) => *v = value,
        None => {
            r.gauges.insert(name.to_string(), value);
        }
    }
}

/// Folds one span duration into the named span's statistics. Called by
/// [`crate::span::SpanGuard`] on drop; callers normally use
/// [`crate::span()`] instead.
#[inline]
pub fn record_span_ns(name: &str, ns: u64) {
    if !enabled() {
        return;
    }
    let mut r = registry().lock().expect("telemetry registry poisoned");
    match r.spans.get_mut(name) {
        Some(s) => s.observe(ns),
        None => {
            r.spans.insert(
                name.to_string(),
                SpanStat {
                    count: 1,
                    total_ns: ns,
                    min_ns: ns,
                    max_ns: ns,
                },
            );
        }
    }
}

/// Folds one sample into the named histogram. No-op (and no allocation
/// beyond the first sample of a name) when telemetry is disabled.
#[inline]
pub fn record_hist(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let mut r = registry().lock().expect("telemetry registry poisoned");
    match r.hists.get_mut(name) {
        Some(h) => h.observe(value),
        None => {
            let mut h = HistStat::new();
            h.observe(value);
            r.hists.insert(name.to_string(), h);
        }
    }
}

/// A point-in-time copy of the registry, sorted by name so that two runs
/// recording the same events produce identical orderings.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, stats)` spans, name-sorted.
    pub spans: Vec<(String, SpanStat)>,
    /// `(name, histogram)` distributions, name-sorted.
    pub hists: Vec<(String, HistStat)>,
}

/// Copies the current registry contents out (works whether or not
/// collection is still enabled).
pub fn snapshot() -> Snapshot {
    let r = registry().lock().expect("telemetry registry poisoned");
    let mut counters: Vec<_> = r.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let mut gauges: Vec<_> = r.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let mut spans: Vec<_> = r
        .spans
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    let mut hists: Vec<_> = r
        .hists
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot {
        counters,
        gauges,
        spans,
        hists,
    }
}

/// Clears all recorded metrics (the enabled flag is left untouched).
pub fn reset() {
    let mut r = registry().lock().expect("telemetry registry poisoned");
    r.counters.clear();
    r.gauges.clear();
    r.spans.clear();
    r.hists.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry state is process-global, so the unit tests here run inside
    // one #[test] to avoid cross-test interference under the parallel test
    // runner. (Integration tests that need the registry use their own
    // process.)
    #[test]
    fn registry_lifecycle() {
        // Disabled: recording is a no-op.
        set_enabled(false);
        add_counter("t.c", 3);
        record_gauge("t.g", 1.5);
        record_span_ns("t.s", 100);
        record_hist("t.h", 7);
        let s = snapshot();
        assert!(s.counters.iter().all(|(k, _)| k != "t.c"));
        assert!(s.gauges.iter().all(|(k, _)| k != "t.g"));
        assert!(s.spans.iter().all(|(k, _)| k != "t.s"));
        assert!(s.hists.iter().all(|(k, _)| k != "t.h"));

        // Enabled: values accumulate and snapshots are sorted.
        set_enabled(true);
        add_counter("t.b", 1);
        add_counter("t.a", 2);
        add_counter("t.a", 3);
        record_gauge("t.g", 2.5);
        record_gauge("t.g", 3.5);
        record_span_ns("t.s", 10);
        record_span_ns("t.s", 30);
        let s = snapshot();
        let names: Vec<&str> = s
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("t."))
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(names, vec!["t.a", "t.b"]);
        assert_eq!(s.counters.iter().find(|(k, _)| k == "t.a").unwrap().1, 5);
        assert_eq!(s.gauges.iter().find(|(k, _)| k == "t.g").unwrap().1, 3.5);
        let span = &s.spans.iter().find(|(k, _)| k == "t.s").unwrap().1;
        assert_eq!(span.count, 2);
        assert_eq!(span.total_ns, 40);
        assert_eq!(span.min_ns, 10);
        assert_eq!(span.max_ns, 30);

        // Histograms: bucketed percentiles within a power of two.
        record_hist("t.h", 100);
        record_hist("t.h", 1_000);
        record_hist("t.h", 10_000);
        let s = snapshot();
        let h = &s.hists.iter().find(|(k, _)| k == "t.h").unwrap().1;
        assert_eq!(h.count, 3);
        assert_eq!(h.total, 11_100);
        assert_eq!((h.min, h.max), (100, 10_000));
        assert_eq!(h.percentile(100.0), 10_000); // clamped to max
        let p50 = h.percentile(50.0);
        assert!((1_000..=2_047).contains(&p50), "p50 {p50}");

        // Reset clears everything but keeps the flag.
        reset();
        assert!(enabled());
        assert!(snapshot().counters.is_empty());
        assert!(snapshot().hists.is_empty());
        set_enabled(false);
    }

    #[test]
    fn windowed_hist_partitions_the_stream() {
        let mut w = WindowedHist::new();
        for v in [10u64, 20, 30] {
            w.observe(v);
        }
        assert_eq!(w.cumulative().count, 3);
        assert_eq!(w.window().count, 3);
        let first = w.take_window();
        assert_eq!((first.count, first.min, first.max), (3, 10, 30));
        // The window is fresh; the cumulative view keeps everything.
        assert_eq!(w.window().count, 0);
        assert_eq!(w.cumulative().count, 3);
        w.observe(1_000);
        let second = w.take_window();
        assert_eq!((second.count, second.min, second.max), (1, 1_000, 1_000));
        assert_eq!(w.cumulative().count, 4);
        assert_eq!(w.cumulative().max, 1_000);
        // An idle window reads as empty rather than repeating history.
        assert_eq!(w.take_window().count, 0);
    }

    #[test]
    fn hist_stat_edge_cases() {
        let h = HistStat::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        let mut h = HistStat::new();
        h.observe(0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!((h.min, h.max, h.count), (0, 0, 1));
        h.observe(u64::MAX);
        assert_eq!(h.percentile(100.0), u64::MAX);
        assert_eq!(h.total, u64::MAX); // saturating sum
    }
}
