//! # mtsr-metrics
//!
//! The paper's evaluation metrics (§5.3):
//!
//! * [`nrmse`] — Normalised Root Mean Square Error (Eq. 11): RMSE divided
//!   by the ground-truth mean. Lower is better.
//! * [`psnr`] — Peak Signal-to-Noise Ratio in dB (Eq. 12), with the peak
//!   being the highest traffic volume observed in one cell (5 496 MB for
//!   the Milan data). Higher is better.
//! * [`ssim`] — Structural Similarity Index (Eq. 13), the global
//!   mean/variance/covariance form with the usual `c₁, c₂` stabilisers.
//!   Higher is better.
//!
//! Plus auxiliary measures ([`mae`], Pearson correlation via
//! `mtsr_tensor::stats`) used in the extended experiment tables.

pub mod region;

use mtsr_tensor::{Result, Tensor, TensorError};

/// Peak traffic volume (MB per 10-minute interval) observed in the Milan
/// data set; the paper plugs this into the PSNR formula.
pub const MILAN_PEAK_MB: f32 = 5496.0;

fn check_pair(pred: &Tensor, truth: &Tensor, op: &'static str) -> Result<()> {
    pred.shape().check_same(truth.shape(), op)?;
    if pred.numel() == 0 {
        return Err(TensorError::InvalidShape {
            op,
            reason: "empty tensors".into(),
        });
    }
    Ok(())
}

/// Normalised Root Mean Square Error (paper Eq. 11):
///
/// `NRMSE = √(Σᵢ (h̃ᵢ − hᵢ)² / I) / mean(h)`.
///
/// Fails when the ground-truth mean is zero (undefined normalisation).
pub fn nrmse(pred: &Tensor, truth: &Tensor) -> Result<f32> {
    check_pair(pred, truth, "nrmse")?;
    let mean = truth.mean();
    if mean.abs() < f32::EPSILON {
        return Err(TensorError::InvalidShape {
            op: "nrmse",
            reason: "ground-truth mean is zero".into(),
        });
    }
    Ok(pred.mse(truth)?.sqrt() / mean)
}

/// Peak Signal-to-Noise Ratio in dB (paper Eq. 12):
///
/// `PSNR = 20·log₁₀(peak) − 10·log₁₀(MSE)`.
///
/// `peak` is the maximum observable value ([`MILAN_PEAK_MB`] for
/// traffic in MB). Identical tensors would yield `+∞`; the result is
/// capped at 150 dB so downstream averaging stays meaningful.
pub fn psnr(pred: &Tensor, truth: &Tensor, peak: f32) -> Result<f32> {
    check_pair(pred, truth, "psnr")?;
    if peak.is_nan() || peak <= 0.0 {
        return Err(TensorError::InvalidShape {
            op: "psnr",
            reason: format!("peak must be positive, got {peak}"),
        });
    }
    let mse = pred.mse(truth)?;
    if mse <= 0.0 {
        return Ok(150.0);
    }
    Ok((20.0 * peak.log10() - 10.0 * mse.log10()).min(150.0))
}

/// Structural Similarity Index (paper Eq. 13):
///
/// `SSIM = ((2·μ_x·μ_y + c₁)(2·cov + c₂)) /
///         ((μ_x² + μ_y² + c₁)(σ_x² + σ_y² + c₂))`
///
/// with `c₁ = (0.01·L)²`, `c₂ = (0.03·L)²` for dynamic range `L`.
/// Result lies in `[-1, 1]`; 1 iff the images are identical.
pub fn ssim(pred: &Tensor, truth: &Tensor, dynamic_range: f32) -> Result<f32> {
    check_pair(pred, truth, "ssim")?;
    if dynamic_range.is_nan() || dynamic_range <= 0.0 {
        return Err(TensorError::InvalidShape {
            op: "ssim",
            reason: format!("dynamic range must be positive, got {dynamic_range}"),
        });
    }
    let c1 = (0.01 * dynamic_range).powi(2);
    let c2 = (0.03 * dynamic_range).powi(2);
    let mx = pred.mean();
    let my = truth.mean();
    let vx = pred.variance();
    let vy = truth.variance();
    let cov = pred.covariance(truth)?;
    Ok(((2.0 * mx * my + c1) * (2.0 * cov + c2)) / ((mx * mx + my * my + c1) * (vx + vy + c2)))
}

/// Mean SSIM over sliding windows — the form common in image-quality
/// work \[35\]; more sensitive to local structure than the global Eq. 13.
///
/// `window` must fit inside the `[H, W]` images; stride is `window / 2`
/// (50% overlap).
pub fn ssim_windowed(
    pred: &Tensor,
    truth: &Tensor,
    dynamic_range: f32,
    window: usize,
) -> Result<f32> {
    check_pair(pred, truth, "ssim_windowed")?;
    let dims = pred.dims();
    if dims.len() != 2 {
        return Err(TensorError::InvalidShape {
            op: "ssim_windowed",
            reason: format!("expected [H, W] images, got {}", pred.shape()),
        });
    }
    let (h, w) = (dims[0], dims[1]);
    if window == 0 || window > h || window > w {
        return Err(TensorError::InvalidShape {
            op: "ssim_windowed",
            reason: format!("window {window} does not fit {h}x{w}"),
        });
    }
    let stride = (window / 2).max(1);
    let extract = |t: &Tensor, y0: usize, x0: usize| -> Tensor {
        let mut out = Tensor::zeros([window, window]);
        let src = t.as_slice();
        let dst = out.as_mut_slice();
        for r in 0..window {
            let s = (y0 + r) * w + x0;
            dst[r * window..(r + 1) * window].copy_from_slice(&src[s..s + window]);
        }
        out
    };
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut y = 0;
    loop {
        let y0 = y.min(h - window);
        let mut x = 0;
        loop {
            let x0 = x.min(w - window);
            let wp = extract(pred, y0, x0);
            let wt = extract(truth, y0, x0);
            total += ssim(&wp, &wt, dynamic_range)? as f64;
            count += 1;
            if x0 == w - window {
                break;
            }
            x += stride;
        }
        if y0 == h - window {
            break;
        }
        y += stride;
    }
    Ok((total / count as f64) as f32)
}

/// Mean absolute error — an auxiliary robustness measure.
pub fn mae(pred: &Tensor, truth: &Tensor) -> Result<f32> {
    check_pair(pred, truth, "mae")?;
    let s: f64 = pred
        .as_slice()
        .iter()
        .zip(truth.as_slice())
        .map(|(&a, &b)| ((a - b) as f64).abs())
        .sum();
    Ok((s / pred.numel() as f64) as f32)
}

/// Aggregated scores of one method on one experiment — a row of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scores {
    /// Mean NRMSE over evaluated snapshots (lower better).
    pub nrmse: f32,
    /// Mean PSNR in dB (higher better).
    pub psnr: f32,
    /// Mean SSIM (higher better).
    pub ssim: f32,
}

/// Averages per-snapshot metric evaluations into a [`Scores`] row.
pub fn score_snapshots(pairs: &[(Tensor, Tensor)], peak: f32) -> Result<Scores> {
    if pairs.is_empty() {
        return Err(TensorError::InvalidShape {
            op: "score_snapshots",
            reason: "no snapshots to score".into(),
        });
    }
    let (mut sn, mut sp, mut ss) = (0.0f64, 0.0f64, 0.0f64);
    for (pred, truth) in pairs {
        sn += nrmse(pred, truth)? as f64;
        sp += psnr(pred, truth, peak)? as f64;
        ss += ssim(pred, truth, peak)? as f64;
    }
    let n = pairs.len() as f64;
    Ok(Scores {
        nrmse: (sn / n) as f32,
        psnr: (sp / n) as f32,
        ssim: (ss / n) as f32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsr_tensor::Rng;

    fn pair(seed: u64) -> (Tensor, Tensor) {
        let mut rng = Rng::seed_from(seed);
        let truth = Tensor::rand_uniform([16, 16], 10.0, 100.0, &mut rng);
        let noise = Tensor::rand_normal([16, 16], 0.0, 5.0, &mut rng);
        let pred = truth.add(&noise).unwrap();
        (pred, truth)
    }

    #[test]
    fn nrmse_zero_iff_identical() {
        let (_, truth) = pair(1);
        assert_eq!(nrmse(&truth, &truth).unwrap(), 0.0);
        let (pred, truth) = pair(2);
        assert!(nrmse(&pred, &truth).unwrap() > 0.0);
    }

    #[test]
    fn nrmse_hand_computed() {
        // truth = [2, 2], pred = [1, 3]: RMSE = 1, mean = 2 → NRMSE = 0.5.
        let truth = Tensor::from_vec([2], vec![2.0, 2.0]).unwrap();
        let pred = Tensor::from_vec([2], vec![1.0, 3.0]).unwrap();
        assert!((nrmse(&pred, &truth).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn nrmse_scale_invariant() {
        // Scaling both tensors leaves NRMSE unchanged (the point of the
        // normalisation, §5.3: "comparing data sets with different scales").
        let (pred, truth) = pair(3);
        let a = nrmse(&pred, &truth).unwrap();
        let b = nrmse(&pred.scale(7.0), &truth.scale(7.0)).unwrap();
        assert!((a - b).abs() < 1e-5);
    }

    #[test]
    fn nrmse_rejects_zero_mean_truth() {
        let truth = Tensor::from_vec([2], vec![-1.0, 1.0]).unwrap();
        let pred = Tensor::zeros([2]);
        assert!(nrmse(&pred, &truth).is_err());
    }

    #[test]
    fn psnr_monotone_in_error() {
        let truth = Tensor::full([8, 8], 100.0);
        let p1 = truth.add_scalar(1.0);
        let p10 = truth.add_scalar(10.0);
        let a = psnr(&p1, &truth, MILAN_PEAK_MB).unwrap();
        let b = psnr(&p10, &truth, MILAN_PEAK_MB).unwrap();
        assert!(a > b);
        // 10× the error costs exactly 20 dB.
        assert!((a - b - 20.0).abs() < 1e-3);
    }

    #[test]
    fn psnr_identical_capped() {
        let (_, truth) = pair(4);
        assert_eq!(psnr(&truth, &truth, MILAN_PEAK_MB).unwrap(), 150.0);
    }

    #[test]
    fn psnr_hand_computed() {
        // peak 100, MSE 1 → 20·log10(100) = 40 dB.
        let truth = Tensor::zeros([4]);
        let pred = Tensor::ones([4]);
        assert!((psnr(&pred, &truth, 100.0).unwrap() - 40.0).abs() < 1e-4);
    }

    #[test]
    fn ssim_bounds_and_identity() {
        let (pred, truth) = pair(5);
        let s = ssim(&pred, &truth, MILAN_PEAK_MB).unwrap();
        assert!((-1.0..=1.0).contains(&s));
        assert!((ssim(&truth, &truth, MILAN_PEAK_MB).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ssim_detects_structure_loss() {
        // A constant predictor has no structure: SSIM far below a noisy
        // but structure-preserving predictor.
        let mut rng = Rng::seed_from(6);
        let truth = Tensor::rand_uniform([12, 12], 0.0, 1000.0, &mut rng);
        let flat = Tensor::full([12, 12], truth.mean());
        let noisy = truth
            .add(&Tensor::rand_normal([12, 12], 0.0, 30.0, &mut rng))
            .unwrap();
        let s_flat = ssim(&flat, &truth, 1000.0).unwrap();
        let s_noisy = ssim(&noisy, &truth, 1000.0).unwrap();
        assert!(s_noisy > 2.0 * s_flat, "noisy {s_noisy} vs flat {s_flat}");
    }

    #[test]
    fn windowed_ssim_agrees_on_identity_and_penalises_local_damage() {
        let mut rng = Rng::seed_from(7);
        let truth = Tensor::rand_uniform([16, 16], 0.0, 100.0, &mut rng);
        assert!((ssim_windowed(&truth, &truth, 100.0, 8).unwrap() - 1.0).abs() < 1e-6);
        // Zero out one quadrant: windowed SSIM must drop.
        let mut damaged = truth.clone();
        for y in 0..8 {
            for x in 0..8 {
                damaged.set(&[y, x], 0.0).unwrap();
            }
        }
        let s = ssim_windowed(&damaged, &truth, 100.0, 8).unwrap();
        assert!(s < 0.9, "windowed ssim {s}");
        assert!(ssim_windowed(&truth, &truth, 100.0, 20).is_err());
    }

    #[test]
    fn mae_hand_computed() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![2.0, 2.0, 1.0]).unwrap();
        assert!((mae(&a, &b).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn score_snapshots_averages() {
        let (p1, t1) = pair(8);
        let (p2, t2) = pair(9);
        let s = score_snapshots(&[(p1.clone(), t1.clone()), (p2, t2)], MILAN_PEAK_MB).unwrap();
        assert!(s.nrmse > 0.0 && s.psnr > 0.0 && s.ssim > 0.0);
        let s1 = score_snapshots(&[(p1, t1)], MILAN_PEAK_MB).unwrap();
        assert_ne!(s, s1);
        assert!(score_snapshots(&[], MILAN_PEAK_MB).is_err());
    }

    #[test]
    fn shape_mismatches_rejected() {
        let a = Tensor::zeros([4]);
        let b = Tensor::zeros([5]);
        assert!(nrmse(&a, &b).is_err());
        assert!(psnr(&a, &b, 1.0).is_err());
        assert!(ssim(&a, &b, 1.0).is_err());
        assert!(mae(&a, &b).is_err());
        assert!(psnr(&a, &a, 0.0).is_err());
        assert!(ssim(&a, &a, -1.0).is_err());
    }
}
