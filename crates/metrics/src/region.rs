//! Per-region evaluation: centre vs ring vs suburb.
//!
//! The paper's qualitative analysis repeatedly distinguishes the dense
//! city centre (where weak methods "significantly under-estimate the
//! traffic volume") from the suburbs. This module makes that analysis
//! quantitative: partition the grid into concentric regions by distance
//! from the centre and score each region separately.

use crate::{nrmse, psnr, ssim, Scores};
use mtsr_tensor::{Result, Tensor, TensorError};

/// The three concentric regions used in the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Inner disc (≤ 1/3 of the max centre distance).
    Centre,
    /// Middle annulus.
    Ring,
    /// Outer area.
    Suburb,
}

impl Region {
    /// All regions, inside-out.
    pub fn all() -> [Region; 3] {
        [Region::Centre, Region::Ring, Region::Suburb]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Region::Centre => "centre",
            Region::Ring => "ring",
            Region::Suburb => "suburb",
        }
    }
}

/// Region of a cell in a `grid`-sized map (by normalised distance from
/// the grid centre; thresholds 1/3 and 2/3).
pub fn region_of(grid: usize, y: usize, x: usize) -> Region {
    let g = grid as f32;
    let dy = y as f32 + 0.5 - g / 2.0;
    let dx = x as f32 + 0.5 - g / 2.0;
    let r = (dy * dy + dx * dx).sqrt() / ((g / 2.0) * std::f32::consts::SQRT_2);
    if r < 1.0 / 3.0 {
        Region::Centre
    } else if r < 2.0 / 3.0 {
        Region::Ring
    } else {
        Region::Suburb
    }
}

/// Extracts the cells of one region as flat tensors `(pred, truth)`.
fn region_cells(pred: &Tensor, truth: &Tensor, region: Region) -> Result<(Tensor, Tensor)> {
    let d = pred.dims();
    if d.len() != 2 || d[0] != d[1] {
        return Err(TensorError::InvalidShape {
            op: "region_cells",
            reason: format!("expected square [g, g] maps, got {}", pred.shape()),
        });
    }
    pred.shape().check_same(truth.shape(), "region_cells")?;
    let g = d[0];
    let (mut p, mut t) = (Vec::new(), Vec::new());
    let (ps, ts) = (pred.as_slice(), truth.as_slice());
    for y in 0..g {
        for x in 0..g {
            if region_of(g, y, x) == region {
                p.push(ps[y * g + x]);
                t.push(ts[y * g + x]);
            }
        }
    }
    let n = p.len();
    Ok((Tensor::from_vec([n], p)?, Tensor::from_vec([n], t)?))
}

/// Scores one prediction against truth within each region.
///
/// Returns `(region, Scores)` triples inside-out. SSIM here is computed
/// over the flattened region cells (global form over the region's
/// distribution, not a windowed image metric).
pub fn score_by_region(pred: &Tensor, truth: &Tensor, peak: f32) -> Result<Vec<(Region, Scores)>> {
    let mut out = Vec::with_capacity(3);
    for region in Region::all() {
        let (p, t) = region_cells(pred, truth, region)?;
        if p.numel() == 0 {
            continue;
        }
        out.push((
            region,
            Scores {
                nrmse: nrmse(&p, &t)?,
                psnr: psnr(&p, &t, peak)?,
                ssim: ssim(&p, &t, peak)?,
            },
        ));
    }
    Ok(out)
}

/// Relative bias of the predicted total volume in a region:
/// `(Σpred − Σtruth)/Σtruth` — negative means the method under-estimates
/// the region, the failure the paper calls out for the city centre.
pub fn region_volume_bias(pred: &Tensor, truth: &Tensor, region: Region) -> Result<f32> {
    let (p, t) = region_cells(pred, truth, region)?;
    let total_t = t.sum();
    if total_t.abs() < f32::EPSILON {
        return Err(TensorError::InvalidShape {
            op: "region_volume_bias",
            reason: "region has zero true volume".into(),
        });
    }
    Ok((p.sum() - total_t) / total_t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsr_tensor::Rng;

    #[test]
    fn regions_partition_the_grid() {
        let g = 24;
        let mut counts = [0usize; 3];
        for y in 0..g {
            for x in 0..g {
                match region_of(g, y, x) {
                    Region::Centre => counts[0] += 1,
                    Region::Ring => counts[1] += 1,
                    Region::Suburb => counts[2] += 1,
                }
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), g * g);
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        // Grid centre cell is Centre, corner is Suburb.
        assert_eq!(region_of(g, g / 2, g / 2), Region::Centre);
        assert_eq!(region_of(g, 0, 0), Region::Suburb);
    }

    #[test]
    fn per_region_scores_isolate_local_damage() {
        let mut rng = Rng::seed_from(1);
        let truth = Tensor::rand_uniform([20, 20], 100.0, 1000.0, &mut rng);
        // Damage only the centre: halve its values.
        let mut pred = truth.clone();
        for y in 0..20 {
            for x in 0..20 {
                if region_of(20, y, x) == Region::Centre {
                    let v = pred.get(&[y, x]).unwrap();
                    pred.set(&[y, x], v / 2.0).unwrap();
                }
            }
        }
        let scores = score_by_region(&pred, &truth, 5496.0).unwrap();
        let get = |r: Region| scores.iter().find(|(rr, _)| *rr == r).unwrap().1;
        assert!(get(Region::Centre).nrmse > 0.3);
        assert!(get(Region::Suburb).nrmse < 1e-6);
        assert!(get(Region::Ring).nrmse < 1e-6);
    }

    #[test]
    fn volume_bias_signs() {
        let mut rng = Rng::seed_from(2);
        let truth = Tensor::rand_uniform([16, 16], 100.0, 200.0, &mut rng);
        let under = truth.scale(0.6);
        let over = truth.scale(1.4);
        let b_under = region_volume_bias(&under, &truth, Region::Centre).unwrap();
        let b_over = region_volume_bias(&over, &truth, Region::Centre).unwrap();
        assert!((b_under + 0.4).abs() < 1e-4, "{b_under}");
        assert!((b_over - 0.4).abs() < 1e-4, "{b_over}");
        assert_eq!(
            region_volume_bias(&truth, &truth, Region::Suburb).unwrap(),
            0.0
        );
    }

    #[test]
    fn error_paths() {
        let a = Tensor::zeros([4, 5]);
        let b = Tensor::zeros([4, 5]);
        assert!(score_by_region(&a, &b, 1.0).is_err()); // not square
        let z = Tensor::zeros([8, 8]);
        assert!(region_volume_bias(&z, &z, Region::Centre).is_err()); // zero volume
        let sq = Tensor::ones([8, 8]);
        let wrong = Tensor::ones([6, 6]);
        assert!(score_by_region(&sq, &wrong, 1.0).is_err());
    }

    #[test]
    fn labels_and_ordering() {
        let all = Region::all();
        assert_eq!(all[0].label(), "centre");
        assert_eq!(all[2].label(), "suburb");
    }
}
