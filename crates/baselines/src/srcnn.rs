//! SRCNN (Dong et al. \[14\]) — the paper's deep-learning comparator:
//! "a benchmark deep learning architecture that comprises three
//! convolutional layers", applied to the bicubic-upscaled coarse frame.

use crate::interp::bicubic_resize;
use crate::SuperResolver;
use mtsr_nn::{loss::mse_loss, Adam, Optimizer};
use mtsr_nn::{Conv2d, Layer, LeakyReLU, Sequential};
use mtsr_tensor::conv::Conv2dSpec;
use mtsr_tensor::{Result, Rng, Tensor, TensorError};
use mtsr_traffic::{Dataset, Split};

/// Configuration of the SRCNN baseline.
#[derive(Debug, Clone, Copy)]
pub struct SrcnnConfig {
    /// Feature maps of the first layer (original paper: 64).
    pub f1: usize,
    /// Feature maps of the second layer (original paper: 32).
    pub f2: usize,
    /// Kernel sizes of the 9-1-5 architecture.
    pub kernels: (usize, usize, usize),
    /// Training steps (minibatch updates).
    pub steps: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for SrcnnConfig {
    /// The original 9-1-5 SRCNN with 64/32 feature maps.
    fn default() -> Self {
        SrcnnConfig {
            f1: 64,
            f2: 32,
            kernels: (9, 1, 5),
            steps: 400,
            batch: 8,
            lr: 1e-3,
        }
    }
}

impl SrcnnConfig {
    /// Small preset for unit tests and quick experiments.
    pub fn tiny() -> Self {
        SrcnnConfig {
            f1: 12,
            f2: 8,
            kernels: (5, 1, 3),
            steps: 60,
            batch: 4,
            lr: 2e-3,
        }
    }
}

/// The SRCNN method (state: the trained network).
pub struct SrcnnSr {
    cfg: SrcnnConfig,
    net: Option<Sequential>,
    /// Training-loss trace (one entry per step), for convergence tests.
    pub loss_trace: Vec<f32>,
}

impl SrcnnSr {
    /// Creates the method with the default (paper) configuration.
    pub fn new() -> Self {
        Self::with_config(SrcnnConfig::default())
    }

    /// Creates the method with an explicit configuration.
    pub fn with_config(cfg: SrcnnConfig) -> Self {
        SrcnnSr {
            cfg,
            net: None,
            loss_trace: Vec::new(),
        }
    }

    fn build_net(&self, rng: &mut Rng) -> Sequential {
        let (k1, k2, k3) = self.cfg.kernels;
        Sequential::new()
            .push(Conv2d::new(
                "srcnn1",
                1,
                self.cfg.f1,
                (k1, k1),
                Conv2dSpec::same(k1),
                rng,
            ))
            .push(LeakyReLU::new(0.0)) // plain ReLU as in the original
            .push(Conv2d::new(
                "srcnn2",
                self.cfg.f1,
                self.cfg.f2,
                (k2, k2),
                Conv2dSpec::same(k2),
                rng,
            ))
            .push(LeakyReLU::new(0.0))
            .push(Conv2d::new(
                "srcnn3",
                self.cfg.f2,
                1,
                (k3, k3),
                Conv2dSpec::same(k3),
                rng,
            ))
    }

    /// Bicubic-upscales the latest coarse frame of each batched input
    /// `[N, 1, S, h, w]` to `[N, 1, g, g]`.
    fn upscale_batch(ds: &Dataset, inputs: &Tensor) -> Result<Tensor> {
        let dims = inputs.dims();
        let (n, s, h, w) = (dims[0], dims[2], dims[3], dims[4]);
        let g_h = dims_target(ds, h);
        let per = h * w;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let base = (i * s + (s - 1)) * per;
            let last = Tensor::from_vec([h, w], inputs.as_slice()[base..base + per].to_vec())?;
            let up = bicubic_resize(&last, g_h, g_h)?;
            out.push(up.reshape([1, g_h, g_h])?);
        }
        Tensor::stack(&out)
    }
}

/// Target spatial side for an input of coarse side `h`: scale by the
/// dataset's grid/square ratio (handles cropped training windows too).
fn dims_target(ds: &Dataset, h: usize) -> usize {
    let factor = ds.layout().grid / ds.layout().square;
    h * factor
}

impl Default for SrcnnSr {
    fn default() -> Self {
        Self::new()
    }
}

impl SuperResolver for SrcnnSr {
    fn name(&self) -> &'static str {
        "SRCNN"
    }

    fn fit(&mut self, ds: &Dataset, rng: &mut Rng) -> Result<()> {
        let mut net = self.build_net(rng);
        let mut opt = Adam::new(self.cfg.lr);
        self.loss_trace.clear();
        for _ in 0..self.cfg.steps {
            let (inputs, targets) = ds.sample_batch(Split::Train, self.cfg.batch, rng)?;
            let up = Self::upscale_batch(ds, &inputs)?;
            let target_dims = targets.dims().to_vec(); // [N, 1, H, W]
            let pred = net.forward(&up, true)?;
            if pred.dims() != target_dims {
                return Err(TensorError::ShapeMismatch {
                    op: "SrcnnSr::fit",
                    lhs: pred.dims().to_vec(),
                    rhs: target_dims,
                });
            }
            let (loss, grad) = mse_loss(&pred, &targets)?;
            self.loss_trace.push(loss);
            net.backward(&grad)?;
            opt.step(&mut net);
        }
        self.net = Some(net);
        Ok(())
    }

    fn predict(&mut self, ds: &Dataset, t: usize) -> Result<Tensor> {
        let net = self.net.as_mut().ok_or(TensorError::InvalidShape {
            op: "SrcnnSr::predict",
            reason: "fit() must be called before predict()".into(),
        })?;
        let g = ds.layout().grid;
        let coarse = crate::latest_coarse(ds, t)?;
        let up = bicubic_resize(&coarse, g, g)?;
        let x = up.reshape([1, 1, g, g])?;
        let y = net.forward(&x, false)?;
        y.reshape([g, g])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsr_traffic::{CityConfig, DatasetConfig, MilanGenerator, MtsrInstance, ProbeLayout};

    fn dataset(seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed);
        let gen = MilanGenerator::new(&CityConfig::tiny(), &mut rng).unwrap();
        let movie = gen
            .generate(DatasetConfig::tiny().total(), &mut rng)
            .unwrap();
        let layout = ProbeLayout::for_instance(gen.city(), MtsrInstance::Up2).unwrap();
        Dataset::build(&movie, layout, DatasetConfig::tiny()).unwrap()
    }

    #[test]
    fn predict_requires_fit() {
        let ds = dataset(1);
        let t = ds.usable_indices(Split::Test)[0];
        assert!(SrcnnSr::with_config(SrcnnConfig::tiny())
            .predict(&ds, t)
            .is_err());
    }

    #[test]
    fn training_reduces_loss() {
        let ds = dataset(2);
        let mut m = SrcnnSr::with_config(SrcnnConfig::tiny());
        m.fit(&ds, &mut Rng::seed_from(3)).unwrap();
        let trace = &m.loss_trace;
        let head: f32 = trace[..8].iter().sum::<f32>() / 8.0;
        let tail: f32 = trace[trace.len() - 8..].iter().sum::<f32>() / 8.0;
        assert!(tail < head, "loss did not decrease: {head} → {tail}");
    }

    #[test]
    fn prediction_shape_and_finiteness() {
        let ds = dataset(4);
        let t = ds.usable_indices(Split::Test)[0];
        let mut m = SrcnnSr::with_config(SrcnnConfig::tiny());
        m.fit(&ds, &mut Rng::seed_from(5)).unwrap();
        let p = m.predict(&ds, t).unwrap();
        assert_eq!(p.dims(), &[20, 20]);
        assert!(p.is_finite());
    }
}
