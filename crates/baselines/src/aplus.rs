//! A+ — Adjusted Anchored Neighbourhood Regression (Timofte et al. \[32\]).
//!
//! k-means anchors are learned over low-resolution patch features; each
//! anchor owns a ridge regressor fitted on the training pairs assigned to
//! it (its "neighbourhood"). Prediction routes every test patch to its
//! nearest anchor and applies that anchor's precomputed linear map —
//! giving example-based quality at interpolation-like speed.

use crate::interp::bicubic_resize;
use crate::linalg::{matvec, ridge};
use crate::patches::{kmeans, nearest_centroid, sample_corpus, PATCH};
use crate::SuperResolver;
use mtsr_tensor::{Result, Rng, Tensor, TensorError};
use mtsr_traffic::Dataset;

/// Configuration of the A+ baseline.
#[derive(Debug, Clone, Copy)]
pub struct AplusConfig {
    /// Number of anchors (k-means centroids).
    pub anchors: usize,
    /// Training patch pairs to sample.
    pub corpus: usize,
    /// Ridge regularisation λ.
    pub lambda: f32,
    /// k-means iterations.
    pub kmeans_iters: usize,
    /// Patch stride at prediction time.
    pub stride: usize,
}

impl Default for AplusConfig {
    fn default() -> Self {
        AplusConfig {
            anchors: 64,
            corpus: 4000,
            lambda: 0.1,
            kmeans_iters: 8,
            stride: 2,
        }
    }
}

impl AplusConfig {
    /// Small preset for unit tests.
    pub fn tiny() -> Self {
        AplusConfig {
            anchors: 8,
            corpus: 400,
            lambda: 0.1,
            kmeans_iters: 4,
            stride: 2,
        }
    }
}

/// The A+ method (state: anchors and their regressors).
pub struct AplusSr {
    cfg: AplusConfig,
    /// Anchor centroids `[anchors, PATCH²]`.
    anchors: Option<Tensor>,
    /// Per-anchor regressors `[PATCH², PATCH²]` mapping lo-feature →
    /// hi-residual.
    regressors: Vec<Tensor>,
}

impl AplusSr {
    /// Creates the method with the default configuration.
    pub fn new() -> Self {
        Self::with_config(AplusConfig::default())
    }

    /// Creates the method with an explicit configuration.
    pub fn with_config(cfg: AplusConfig) -> Self {
        AplusSr {
            cfg,
            anchors: None,
            regressors: Vec::new(),
        }
    }
}

impl Default for AplusSr {
    fn default() -> Self {
        Self::new()
    }
}

impl SuperResolver for AplusSr {
    fn name(&self) -> &'static str {
        "A+"
    }

    fn fit(&mut self, ds: &Dataset, rng: &mut Rng) -> Result<()> {
        let corpus = sample_corpus(ds, self.cfg.corpus, rng)?;
        let anchors = kmeans(&corpus.lo, self.cfg.anchors, self.cfg.kmeans_iters, rng)?;
        let f = PATCH * PATCH;
        let n = corpus.len();
        // Assign each sample to its nearest anchor.
        let lo = corpus.lo.as_slice();
        let hi = corpus.hi.as_slice();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); self.cfg.anchors];
        for i in 0..n {
            let a = nearest_centroid(&anchors, &lo[i * f..(i + 1) * f]);
            members[a].push(i);
        }
        // Per-anchor ridge regression over its neighbourhood. An anchor
        // with too few members falls back to the zero map (= bicubic).
        let mut regressors = Vec::with_capacity(self.cfg.anchors);
        for m in &members {
            if m.len() < f / 2 {
                regressors.push(Tensor::zeros([f, f]));
                continue;
            }
            let mut x = Vec::with_capacity(m.len() * f);
            let mut y = Vec::with_capacity(m.len() * f);
            for &i in m {
                x.extend_from_slice(&lo[i * f..(i + 1) * f]);
                y.extend_from_slice(&hi[i * f..(i + 1) * f]);
            }
            let x = Tensor::from_vec([m.len(), f], x)?;
            let y = Tensor::from_vec([m.len(), f], y)?;
            regressors.push(ridge(&x, &y, self.cfg.lambda)?);
        }
        self.anchors = Some(anchors);
        self.regressors = regressors;
        Ok(())
    }

    fn predict(&mut self, ds: &Dataset, t: usize) -> Result<Tensor> {
        let anchors = self.anchors.as_ref().ok_or(TensorError::InvalidShape {
            op: "AplusSr::predict",
            reason: "fit() must be called before predict()".into(),
        })?;
        let g = ds.layout().grid;
        let coarse = crate::latest_coarse(ds, t)?;
        let base = bicubic_resize(&coarse, g, g)?;
        let bs = base.as_slice();
        let f = PATCH * PATCH;
        let mut sum = vec![0.0f64; g * g];
        let mut cnt = vec![0u32; g * g];
        let mut y = 0;
        loop {
            let y0 = y.min(g - PATCH);
            let mut x = 0;
            loop {
                let x0 = x.min(g - PATCH);
                let mut feat = Vec::with_capacity(f);
                for r in 0..PATCH {
                    feat.extend_from_slice(&bs[(y0 + r) * g + x0..(y0 + r) * g + x0 + PATCH]);
                }
                let mean = feat.iter().sum::<f32>() / f as f32;
                for v in &mut feat {
                    *v -= mean;
                }
                let a = nearest_centroid(anchors, &feat);
                // detail = Wᵀ·feat (ridge returns W with X·W ≈ Y layout).
                let feat_t = Tensor::from_vec([f], feat)?;
                let w_t = self.regressors[a].transpose2d()?;
                let detail = matvec(&w_t, &feat_t)?;
                let d = detail.as_slice();
                for r in 0..PATCH {
                    for c in 0..PATCH {
                        let gi = (y0 + r) * g + (x0 + c);
                        sum[gi] += (bs[gi] + d[r * PATCH + c]) as f64;
                        cnt[gi] += 1;
                    }
                }
                if x0 == g - PATCH {
                    break;
                }
                x += self.cfg.stride;
            }
            if y0 == g - PATCH {
                break;
            }
            y += self.cfg.stride;
        }
        let data = sum
            .into_iter()
            .zip(cnt)
            .map(|(s, c)| (s / c.max(1) as f64) as f32)
            .collect();
        Tensor::from_vec([g, g], data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BicubicSr;
    use mtsr_metrics::nrmse;
    use mtsr_traffic::{
        CityConfig, DatasetConfig, MilanGenerator, MtsrInstance, ProbeLayout, Split,
    };

    fn dataset(seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed);
        let gen = MilanGenerator::new(&CityConfig::tiny(), &mut rng).unwrap();
        let movie = gen
            .generate(DatasetConfig::tiny().total(), &mut rng)
            .unwrap();
        let layout = ProbeLayout::for_instance(gen.city(), MtsrInstance::Up2).unwrap();
        Dataset::build(&movie, layout, DatasetConfig::tiny()).unwrap()
    }

    #[test]
    fn predict_requires_fit() {
        let ds = dataset(1);
        let t = ds.usable_indices(Split::Test)[0];
        assert!(AplusSr::with_config(AplusConfig::tiny())
            .predict(&ds, t)
            .is_err());
    }

    #[test]
    fn fit_predict_shapes() {
        let ds = dataset(2);
        let t = ds.usable_indices(Split::Test)[0];
        let mut ap = AplusSr::with_config(AplusConfig::tiny());
        ap.fit(&ds, &mut Rng::seed_from(5)).unwrap();
        let pred = ap.predict(&ds, t).unwrap();
        assert_eq!(pred.dims(), &[20, 20]);
        assert!(pred.is_finite());
    }

    #[test]
    fn aplus_not_wildly_worse_than_bicubic() {
        let ds = dataset(3);
        let mut ap = AplusSr::with_config(AplusConfig::tiny());
        ap.fit(&ds, &mut Rng::seed_from(6)).unwrap();
        let mut bi = BicubicSr::new();
        let (mut e_ap, mut e_bi) = (0.0, 0.0);
        for &t in ds.usable_indices(Split::Test).iter().take(4) {
            let truth = ds.fine_frame_raw(t).unwrap();
            e_ap += nrmse(&ds.denormalize(&ap.predict(&ds, t).unwrap()), &truth).unwrap();
            e_bi += nrmse(&ds.denormalize(&bi.predict(&ds, t).unwrap()), &truth).unwrap();
        }
        // A learned residual on real structure shouldn't explode relative
        // to its own base interpolation.
        assert!(e_ap < 2.0 * e_bi, "A+ {e_ap} vs bicubic {e_bi}");
    }
}
