//! Sparse-coding super-resolution (Yang et al. \[31\]).
//!
//! A coupled low/high-resolution patch dictionary is learned from training
//! pairs; at test time each low-resolution patch is sparse-coded over the
//! low-res dictionary with orthogonal matching pursuit (OMP) and the code
//! is applied to the high-res dictionary to synthesise the residual detail
//! on top of the bicubic upscale. Overlapping patch predictions are
//! averaged.

use crate::interp::bicubic_resize;
use crate::linalg::lstsq_columns;
use crate::patches::{kmeans, sample_corpus, PATCH};
use crate::SuperResolver;
use mtsr_tensor::matmul::matmul_tn;
use mtsr_tensor::{Result, Rng, Tensor, TensorError};
use mtsr_traffic::Dataset;

/// Configuration of the SC baseline.
#[derive(Debug, Clone, Copy)]
pub struct ScConfig {
    /// Dictionary size (atoms).
    pub atoms: usize,
    /// OMP sparsity (non-zero coefficients per patch).
    pub sparsity: usize,
    /// Training patch pairs to sample.
    pub corpus: usize,
    /// k-means iterations for dictionary seeding.
    pub kmeans_iters: usize,
    /// Patch stride at prediction time (1 = maximally overlapped).
    pub stride: usize,
}

impl Default for ScConfig {
    fn default() -> Self {
        ScConfig {
            atoms: 128,
            sparsity: 4,
            corpus: 4000,
            kmeans_iters: 8,
            stride: 2,
        }
    }
}

impl ScConfig {
    /// Small preset for unit tests.
    pub fn tiny() -> Self {
        ScConfig {
            atoms: 24,
            sparsity: 3,
            corpus: 400,
            kmeans_iters: 4,
            stride: 2,
        }
    }
}

/// The Sparse Coding method (state: the coupled dictionary).
pub struct SparseCodingSr {
    cfg: ScConfig,
    /// Low-res dictionary `[PATCH², atoms]`, unit-norm columns.
    d_lo: Option<Tensor>,
    /// High-res dictionary `[PATCH², atoms]` (scaled jointly with `d_lo`).
    d_hi: Option<Tensor>,
}

impl SparseCodingSr {
    /// Creates the method with the default configuration.
    pub fn new() -> Self {
        Self::with_config(ScConfig::default())
    }

    /// Creates the method with an explicit configuration.
    pub fn with_config(cfg: ScConfig) -> Self {
        SparseCodingSr {
            cfg,
            d_lo: None,
            d_hi: None,
        }
    }

    /// OMP: greedily selects up to `sparsity` atoms and least-squares
    /// refits the residual after each selection.
    fn omp(&self, d_lo: &Tensor, y: &Tensor) -> Result<(Vec<usize>, Vec<f32>)> {
        let atoms = d_lo.dims()[1];
        let mut selected: Vec<usize> = Vec::new();
        let mut coef: Vec<f32> = Vec::new();
        let mut residual = y.clone();
        for _ in 0..self.cfg.sparsity.min(atoms) {
            // Correlations of every atom with the residual: D_loᵀ r.
            let r_col = residual.reshaped([residual.numel(), 1])?;
            let corr = matmul_tn(d_lo, &r_col)?;
            let c = corr.as_slice();
            let mut best = (0.0f32, usize::MAX);
            for (i, &v) in c.iter().enumerate() {
                if !selected.contains(&i) && v.abs() > best.0 {
                    best = (v.abs(), i);
                }
            }
            if best.1 == usize::MAX || best.0 < 1e-6 {
                break; // residual orthogonal to remaining atoms
            }
            selected.push(best.1);
            coef = lstsq_columns(d_lo, &selected, y)?;
            // Recompute residual = y − D_sel α.
            let mut recon = vec![0.0f32; y.numel()];
            let dsl = d_lo.as_slice();
            for (j, &a) in selected.iter().zip(&coef) {
                for (r, rv) in recon.iter_mut().enumerate() {
                    *rv += a * dsl[r * atoms + j];
                }
            }
            residual = y.zip(
                &Tensor::from_vec([y.numel()], recon)?,
                "omp_residual",
                |a, b| a - b,
            )?;
        }
        Ok((selected, coef))
    }
}

impl Default for SparseCodingSr {
    fn default() -> Self {
        Self::new()
    }
}

impl SuperResolver for SparseCodingSr {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn fit(&mut self, ds: &Dataset, rng: &mut Rng) -> Result<()> {
        let corpus = sample_corpus(ds, self.cfg.corpus, rng)?;
        // Joint dictionary: k-means centroids of concatenated [lo | hi]
        // vectors, then split and column-normalised by the lo part (the
        // standard coupled-dictionary construction).
        let n = corpus.len();
        let f = PATCH * PATCH;
        let mut joint = Vec::with_capacity(n * 2 * f);
        for i in 0..n {
            joint.extend_from_slice(&corpus.lo.as_slice()[i * f..(i + 1) * f]);
            joint.extend_from_slice(&corpus.hi.as_slice()[i * f..(i + 1) * f]);
        }
        let joint = Tensor::from_vec([n, 2 * f], joint)?;
        let cent = kmeans(&joint, self.cfg.atoms, self.cfg.kmeans_iters, rng)?;
        // Split into column dictionaries [f, atoms].
        let mut d_lo = Tensor::zeros([f, self.cfg.atoms]);
        let mut d_hi = Tensor::zeros([f, self.cfg.atoms]);
        {
            let c = cent.as_slice();
            let dl = d_lo.as_mut_slice();
            let dh = d_hi.as_mut_slice();
            for a in 0..self.cfg.atoms {
                // Normalise each atom by its lo-part norm so OMP
                // correlations are comparable; scale hi jointly to keep the
                // coupling.
                let lo_part = &c[a * 2 * f..a * 2 * f + f];
                let norm = lo_part.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
                for r in 0..f {
                    dl[r * self.cfg.atoms + a] = c[a * 2 * f + r] / norm;
                    dh[r * self.cfg.atoms + a] = c[a * 2 * f + f + r] / norm;
                }
            }
        }
        self.d_lo = Some(d_lo);
        self.d_hi = Some(d_hi);
        Ok(())
    }

    fn predict(&mut self, ds: &Dataset, t: usize) -> Result<Tensor> {
        let (d_lo, d_hi) = match (&self.d_lo, &self.d_hi) {
            (Some(a), Some(b)) => (a.clone(), b.clone()),
            _ => {
                return Err(TensorError::InvalidShape {
                    op: "SparseCodingSr::predict",
                    reason: "fit() must be called before predict()".into(),
                })
            }
        };
        let g = ds.layout().grid;
        let coarse = crate::latest_coarse(ds, t)?;
        let base = bicubic_resize(&coarse, g, g)?;
        let mut sum = vec![0.0f64; g * g];
        let mut cnt = vec![0u32; g * g];
        let bs = base.as_slice();
        let atoms = self.cfg.atoms;
        let f = PATCH * PATCH;
        let mut y = 0;
        loop {
            let y0 = y.min(g - PATCH);
            let mut x = 0;
            loop {
                let x0 = x.min(g - PATCH);
                // Mean-removed low-res feature patch.
                let mut feat = Vec::with_capacity(f);
                for r in 0..PATCH {
                    feat.extend_from_slice(&bs[(y0 + r) * g + x0..(y0 + r) * g + x0 + PATCH]);
                }
                let mean = feat.iter().sum::<f32>() / f as f32;
                for v in &mut feat {
                    *v -= mean;
                }
                let feat_t = Tensor::from_vec([f], feat)?;
                let (sel, coef) = self.omp(&d_lo, &feat_t)?;
                // Residual detail = D_hi α.
                let dh = d_hi.as_slice();
                for r in 0..PATCH {
                    for c in 0..PATCH {
                        let fi = r * PATCH + c;
                        let mut detail = 0.0f32;
                        for (j, &a) in sel.iter().zip(&coef) {
                            detail += a * dh[fi * atoms + j];
                        }
                        let gi = (y0 + r) * g + (x0 + c);
                        sum[gi] += (bs[gi] + detail) as f64;
                        cnt[gi] += 1;
                    }
                }
                if x0 == g - PATCH {
                    break;
                }
                x += self.cfg.stride;
            }
            if y0 == g - PATCH {
                break;
            }
            y += self.cfg.stride;
        }
        let data = sum
            .into_iter()
            .zip(cnt)
            .map(|(s, c)| (s / c.max(1) as f64) as f32)
            .collect();
        Tensor::from_vec([g, g], data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BicubicSr;
    use mtsr_traffic::{
        CityConfig, DatasetConfig, MilanGenerator, MtsrInstance, ProbeLayout, Split,
    };

    fn dataset(seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed);
        let gen = MilanGenerator::new(&CityConfig::tiny(), &mut rng).unwrap();
        let movie = gen
            .generate(DatasetConfig::tiny().total(), &mut rng)
            .unwrap();
        let layout = ProbeLayout::for_instance(gen.city(), MtsrInstance::Up2).unwrap();
        Dataset::build(&movie, layout, DatasetConfig::tiny()).unwrap()
    }

    #[test]
    fn predict_requires_fit() {
        let ds = dataset(1);
        let t = ds.usable_indices(Split::Test)[0];
        let mut sc = SparseCodingSr::with_config(ScConfig::tiny());
        assert!(sc.predict(&ds, t).is_err());
    }

    #[test]
    fn fit_predict_shapes_and_finiteness() {
        let ds = dataset(2);
        let t = ds.usable_indices(Split::Test)[0];
        let mut sc = SparseCodingSr::with_config(ScConfig::tiny());
        sc.fit(&ds, &mut Rng::seed_from(7)).unwrap();
        let pred = sc.predict(&ds, t).unwrap();
        assert_eq!(pred.dims(), &[20, 20]);
        assert!(pred.is_finite());
    }

    #[test]
    fn sc_stays_in_the_neighbourhood_of_bicubic() {
        // SC = bicubic + learned residual; on a tiny corpus it must not
        // catastrophically diverge from its own base predictor.
        let ds = dataset(3);
        let t = ds.usable_indices(Split::Test)[0];
        let mut sc = SparseCodingSr::with_config(ScConfig::tiny());
        sc.fit(&ds, &mut Rng::seed_from(8)).unwrap();
        let p_sc = sc.predict(&ds, t).unwrap();
        let p_bi = BicubicSr::new().predict(&ds, t).unwrap();
        let diff = p_sc.mse(&p_bi).unwrap();
        let scale = p_bi.variance();
        assert!(diff < 4.0 * scale.max(1e-3), "diff {diff} vs var {scale}");
    }

    #[test]
    fn omp_recovers_sparse_combination() {
        let mut rng = Rng::seed_from(4);
        let f = PATCH * PATCH;
        // Random unit-norm dictionary.
        let mut d = Tensor::rand_normal([f, 12], 0.0, 1.0, &mut rng);
        for a in 0..12 {
            let mut n = 0.0f32;
            for r in 0..f {
                n += d.get(&[r, a]).unwrap().powi(2);
            }
            let n = n.sqrt();
            for r in 0..f {
                let v = d.get(&[r, a]).unwrap() / n;
                d.set(&[r, a], v).unwrap();
            }
        }
        // y = 3·atom2 − 2·atom7.
        let mut y = vec![0.0f32; f];
        for (r, yv) in y.iter_mut().enumerate() {
            *yv = 3.0 * d.get(&[r, 2]).unwrap() - 2.0 * d.get(&[r, 7]).unwrap();
        }
        let y = Tensor::from_vec([f], y).unwrap();
        let sc = SparseCodingSr::with_config(ScConfig {
            sparsity: 2,
            ..ScConfig::tiny()
        });
        let (sel, coef) = sc.omp(&d, &y).unwrap();
        let mut pairs: Vec<(usize, f32)> = sel.into_iter().zip(coef).collect();
        pairs.sort_by_key(|p| p.0);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, 2);
        assert!((pairs[0].1 - 3.0).abs() < 1e-3);
        assert_eq!(pairs[1].0, 7);
        assert!((pairs[1].1 + 2.0).abs() < 1e-3);
    }
}
