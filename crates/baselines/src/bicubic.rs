//! Bicubic interpolation baseline \[30\].

use crate::interp::bicubic_resize;
use crate::SuperResolver;
use mtsr_tensor::{Result, Rng, Tensor};
use mtsr_traffic::Dataset;

/// Bicubic upscaling of the coarse square projection to the fine grid —
/// "a popular non-parametric tool frequently used to enhance the
/// resolution of images" (§5.3).
#[derive(Debug, Default, Clone, Copy)]
pub struct BicubicSr;

impl BicubicSr {
    /// Creates the method (stateless).
    pub fn new() -> Self {
        BicubicSr
    }
}

impl SuperResolver for BicubicSr {
    fn name(&self) -> &'static str {
        "Bicubic"
    }

    fn fit(&mut self, _ds: &Dataset, _rng: &mut Rng) -> Result<()> {
        Ok(())
    }

    fn predict(&mut self, ds: &Dataset, t: usize) -> Result<Tensor> {
        let coarse = crate::latest_coarse(ds, t)?;
        let g = ds.layout().grid;
        bicubic_resize(&coarse, g, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsr_metrics::nrmse;
    use mtsr_traffic::{
        CityConfig, Dataset, DatasetConfig, MilanGenerator, MtsrInstance, ProbeLayout, Split,
    };

    fn dataset() -> Dataset {
        let mut rng = Rng::seed_from(21);
        let gen = MilanGenerator::new(&CityConfig::tiny(), &mut rng).unwrap();
        let movie = gen
            .generate(DatasetConfig::tiny().total(), &mut rng)
            .unwrap();
        let layout = ProbeLayout::for_instance(gen.city(), MtsrInstance::Up4).unwrap();
        Dataset::build(&movie, layout, DatasetConfig::tiny()).unwrap()
    }

    #[test]
    fn predicts_fine_grid_shape() {
        let ds = dataset();
        let t = ds.usable_indices(Split::Test)[0];
        let pred = BicubicSr::new().predict(&ds, t).unwrap();
        assert_eq!(pred.dims(), &[20, 20]);
        assert!(pred.is_finite());
    }

    #[test]
    fn bicubic_roughly_tracks_ground_truth() {
        // On denormalised traffic the interpolation must achieve a sane
        // NRMSE (clearly below a trivially bad predictor's ~1.0).
        let ds = dataset();
        let t = ds.usable_indices(Split::Test)[0];
        let pred_raw = ds.denormalize(&BicubicSr::new().predict(&ds, t).unwrap());
        let truth_raw = ds.fine_frame_raw(t).unwrap();
        let e = nrmse(&pred_raw, &truth_raw).unwrap();
        assert!(e < 1.5, "bicubic NRMSE {e}");
    }
}
