//! Patch machinery shared by the example-based SR baselines (SC and A+):
//! extraction of low/high-resolution training patch pairs, feature
//! normalisation and k-means clustering for dictionary/anchor seeding.

use crate::interp::bicubic_resize;
use mtsr_tensor::{Result, Rng, Tensor, TensorError};
use mtsr_traffic::{Dataset, Split};

/// Side of the square patches both methods operate on.
pub const PATCH: usize = 5;

/// A training corpus of patch pairs on the normalised traffic scale:
/// `lo` holds bicubic-upscale patch features, `hi` the residual
/// (truth − bicubic) patches the methods learn to predict.
#[derive(Debug, Clone)]
pub struct PatchCorpus {
    /// Low-resolution features, `[n, PATCH²]`.
    pub lo: Tensor,
    /// High-resolution residual targets, `[n, PATCH²]`.
    pub hi: Tensor,
}

impl PatchCorpus {
    /// Number of patch pairs.
    pub fn len(&self) -> usize {
        self.lo.dims()[0]
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Extracts a flattened `PATCH×PATCH` patch at `(y, x)` from `[g, g]`.
fn patch_at(img: &Tensor, y: usize, x: usize, g: usize) -> Vec<f32> {
    let s = img.as_slice();
    let mut out = Vec::with_capacity(PATCH * PATCH);
    for r in 0..PATCH {
        out.extend_from_slice(&s[(y + r) * g + x..(y + r) * g + x + PATCH]);
    }
    out
}

/// Samples `count` training patch pairs from the dataset's training split.
///
/// For each sampled frame: the bicubic upscale of the coarse frame is the
/// *low-resolution rendition*; patches of it (mean-removed) are features,
/// and the co-located residual patches of the true fine frame are targets
/// — exactly the example-based SR setup of [31, 32].
pub fn sample_corpus(ds: &Dataset, count: usize, rng: &mut Rng) -> Result<PatchCorpus> {
    let g = ds.layout().grid;
    if g < PATCH {
        return Err(TensorError::InvalidShape {
            op: "sample_corpus",
            reason: format!("grid {g} smaller than patch {PATCH}"),
        });
    }
    let idx = ds.usable_indices(Split::Train);
    let mut lo = Vec::with_capacity(count * PATCH * PATCH);
    let mut hi = Vec::with_capacity(count * PATCH * PATCH);
    // Cache the expensive per-frame bicubic across patch draws.
    let mut cached_t = usize::MAX;
    let mut cached_up = Tensor::zeros([g, g]);
    let mut cached_fine = Tensor::zeros([g, g]);
    for _ in 0..count {
        let t = idx[rng.below(idx.len())];
        if t != cached_t {
            let sample = ds.sample_at(t)?;
            let coarse = crate::latest_coarse(ds, t)?;
            cached_up = bicubic_resize(&coarse, g, g)?;
            cached_fine = sample.target.reshaped([g, g])?;
            cached_t = t;
        }
        let y = rng.below(g - PATCH + 1);
        let x = rng.below(g - PATCH + 1);
        let mut pl = patch_at(&cached_up, y, x, g);
        let ph_abs = patch_at(&cached_fine, y, x, g);
        // Feature: mean-removed low-res patch. Target: residual over the
        // bicubic prediction (so a zero output reproduces bicubic).
        let mean = pl.iter().sum::<f32>() / pl.len() as f32;
        for v in &mut pl {
            *v -= mean;
        }
        let ph: Vec<f32> = ph_abs
            .iter()
            .zip(patch_at(&cached_up, y, x, g))
            .map(|(&t, b)| t - b)
            .collect();
        lo.extend_from_slice(&pl);
        hi.extend_from_slice(&ph);
    }
    Ok(PatchCorpus {
        lo: Tensor::from_vec([count, PATCH * PATCH], lo)?,
        hi: Tensor::from_vec([count, PATCH * PATCH], hi)?,
    })
}

/// Plain k-means (Lloyd's algorithm) over the rows of `data: [n, f]`.
/// Returns `[k, f]` centroids. Deterministic given `rng`; empty clusters
/// are re-seeded from random points.
pub fn kmeans(data: &Tensor, k: usize, iters: usize, rng: &mut Rng) -> Result<Tensor> {
    let d = data.dims();
    if d.len() != 2 || d[0] < k || k == 0 {
        return Err(TensorError::InvalidShape {
            op: "kmeans",
            reason: format!("need [n≥k, f] data, got {} with k={k}", data.shape()),
        });
    }
    let (n, f) = (d[0], d[1]);
    let rows = data.as_slice();
    // k-means++-lite seeding: random distinct rows.
    let seeds = rng.sample_indices(n, k);
    let mut cent: Vec<f32> = Vec::with_capacity(k * f);
    for &s in &seeds {
        cent.extend_from_slice(&rows[s * f..(s + 1) * f]);
    }
    let mut assign = vec![0usize; n];
    for _ in 0..iters {
        // Assignment step.
        for i in 0..n {
            let row = &rows[i * f..(i + 1) * f];
            let mut best = (f32::INFINITY, 0usize);
            for c in 0..k {
                let cr = &cent[c * f..(c + 1) * f];
                let mut dist = 0.0f32;
                for (a, b) in row.iter().zip(cr) {
                    dist += (a - b) * (a - b);
                }
                if dist < best.0 {
                    best = (dist, c);
                }
            }
            assign[i] = best.1;
        }
        // Update step.
        let mut sums = vec![0.0f64; k * f];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assign[i];
            counts[c] += 1;
            for j in 0..f {
                sums[c * f + j] += rows[i * f + j] as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed dead centroid.
                let s = rng.below(n);
                cent[c * f..(c + 1) * f].copy_from_slice(&rows[s * f..(s + 1) * f]);
            } else {
                for j in 0..f {
                    cent[c * f + j] = (sums[c * f + j] / counts[c] as f64) as f32;
                }
            }
        }
    }
    Tensor::from_vec([k, f], cent)
}

/// Nearest centroid index for a feature row.
pub fn nearest_centroid(centroids: &Tensor, row: &[f32]) -> usize {
    let d = centroids.dims();
    let (k, f) = (d[0], d[1]);
    let c = centroids.as_slice();
    let mut best = (f32::INFINITY, 0usize);
    for ci in 0..k {
        let cr = &c[ci * f..(ci + 1) * f];
        let mut dist = 0.0f32;
        for (a, b) in row.iter().zip(cr) {
            dist += (a - b) * (a - b);
        }
        if dist < best.0 {
            best = (dist, ci);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsr_traffic::{CityConfig, DatasetConfig, MilanGenerator, MtsrInstance, ProbeLayout};

    fn dataset() -> Dataset {
        let mut rng = Rng::seed_from(31);
        let gen = MilanGenerator::new(&CityConfig::tiny(), &mut rng).unwrap();
        let movie = gen
            .generate(DatasetConfig::tiny().total(), &mut rng)
            .unwrap();
        let layout = ProbeLayout::for_instance(gen.city(), MtsrInstance::Up2).unwrap();
        Dataset::build(&movie, layout, DatasetConfig::tiny()).unwrap()
    }

    #[test]
    fn corpus_shapes_and_feature_centering() {
        let ds = dataset();
        let corpus = sample_corpus(&ds, 64, &mut Rng::seed_from(1)).unwrap();
        assert_eq!(corpus.len(), 64);
        assert!(!corpus.is_empty());
        assert_eq!(corpus.lo.dims(), &[64, 25]);
        assert_eq!(corpus.hi.dims(), &[64, 25]);
        // Each low-res feature row is mean-removed.
        let lo = corpus.lo.as_slice();
        for i in 0..64 {
            let m: f32 = lo[i * 25..(i + 1) * 25].iter().sum::<f32>() / 25.0;
            assert!(m.abs() < 1e-4, "row {i} mean {m}");
        }
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut rng = Rng::seed_from(2);
        // Two blobs at ±10.
        let mut data = Vec::new();
        for i in 0..40 {
            let c = if i % 2 == 0 { 10.0 } else { -10.0 };
            data.push(c + rng.normal(0.0, 0.5));
            data.push(c + rng.normal(0.0, 0.5));
        }
        let t = Tensor::from_vec([40, 2], data).unwrap();
        let cent = kmeans(&t, 2, 10, &mut rng).unwrap();
        let c0 = cent.get(&[0, 0]).unwrap();
        let c1 = cent.get(&[1, 0]).unwrap();
        assert!((c0 - c1).abs() > 15.0, "centroids {c0} vs {c1}");
        // Nearest-centroid routing is consistent.
        let near_pos = nearest_centroid(&cent, &[10.0, 10.0]);
        let near_neg = nearest_centroid(&cent, &[-10.0, -10.0]);
        assert_ne!(near_pos, near_neg);
    }

    #[test]
    fn kmeans_rejects_bad_inputs() {
        let t = Tensor::zeros([3, 2]);
        assert!(kmeans(&t, 5, 3, &mut Rng::seed_from(3)).is_err());
        assert!(kmeans(&t, 0, 3, &mut Rng::seed_from(3)).is_err());
    }
}
