//! # mtsr-baselines
//!
//! The comparison methods of the paper's evaluation (§5.3):
//!
//! * [`UniformSr`] — the operators' uniformity assumption \[8\]: every
//!   sub-cell takes its probe's mean;
//! * [`BicubicSr`] — bicubic interpolation \[30\] of the coarse frame;
//! * [`SparseCodingSr`] — sparse-coding super-resolution (Yang et al.
//!   \[31\]): a learned joint low/high-resolution patch dictionary with
//!   orthogonal-matching-pursuit coding;
//! * [`AplusSr`] — A+ adjusted anchored neighbourhood regression
//!   (Timofte et al. \[32\]): per-anchor ridge regressors over patch
//!   features;
//! * [`SrcnnSr`] — SRCNN (Dong et al. \[14\]): the three-layer
//!   convolutional network, trained on bicubic-upscaled inputs.
//!
//! All methods implement [`SuperResolver`], taking the current coarse
//! snapshot (they are single-frame image-SR techniques — only
//! ZipNet(-GAN) exploits the temporal dimension) and producing a
//! fine-grained prediction on the normalised scale of the dataset.

pub mod aplus;
pub mod bicubic;
pub mod interp;
pub mod linalg;
pub mod patches;
pub mod sparse_coding;
pub mod srcnn;
pub mod uniform;

pub use aplus::AplusSr;
pub use bicubic::BicubicSr;
pub use sparse_coding::SparseCodingSr;
pub use srcnn::SrcnnSr;
pub use uniform::UniformSr;

/// Re-export of the shared method interface (defined next to `Dataset`).
pub use mtsr_traffic::sr::SuperResolver;

pub(crate) use mtsr_traffic::sr::latest_coarse;
