//! Image resampling kernels: bicubic (Catmull-Rom family, a = −0.5) and
//! nearest-neighbour resize, shared by several baselines.

use mtsr_tensor::{Result, Tensor, TensorError};

/// Keys cubic convolution kernel with a = −0.5 (the classic bicubic) \[30\].
fn cubic_kernel(x: f32) -> f32 {
    const A: f32 = -0.5;
    let x = x.abs();
    if x <= 1.0 {
        (A + 2.0) * x * x * x - (A + 3.0) * x * x + 1.0
    } else if x < 2.0 {
        A * x * x * x - 5.0 * A * x * x + 8.0 * A * x - 4.0 * A
    } else {
        0.0
    }
}

fn check_2d(src: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    let d = src.dims();
    if d.len() != 2 || d[0] == 0 || d[1] == 0 {
        return Err(TensorError::InvalidShape {
            op,
            reason: format!("expected non-empty [H, W], got {}", src.shape()),
        });
    }
    Ok((d[0], d[1]))
}

/// Bicubic resize of a `[h, w]` image to `[oh, ow]`, edge-clamped.
pub fn bicubic_resize(src: &Tensor, oh: usize, ow: usize) -> Result<Tensor> {
    let (h, w) = check_2d(src, "bicubic_resize")?;
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidShape {
            op: "bicubic_resize",
            reason: "output dims must be positive".into(),
        });
    }
    let s = src.as_slice();
    let mut out = Tensor::zeros([oh, ow]);
    let o = out.as_mut_slice();
    let fy = h as f32 / oh as f32;
    let fx = w as f32 / ow as f32;
    let clamp = |v: isize, n: usize| v.clamp(0, n as isize - 1) as usize;
    for oy in 0..oh {
        // Centre-aligned source coordinate.
        let sy = (oy as f32 + 0.5) * fy - 0.5;
        let y0 = sy.floor() as isize;
        let dy = sy - y0 as f32;
        let wy: [f32; 4] = [
            cubic_kernel(dy + 1.0),
            cubic_kernel(dy),
            cubic_kernel(dy - 1.0),
            cubic_kernel(dy - 2.0),
        ];
        for ox in 0..ow {
            let sx = (ox as f32 + 0.5) * fx - 0.5;
            let x0 = sx.floor() as isize;
            let dx = sx - x0 as f32;
            let wx: [f32; 4] = [
                cubic_kernel(dx + 1.0),
                cubic_kernel(dx),
                cubic_kernel(dx - 1.0),
                cubic_kernel(dx - 2.0),
            ];
            let mut acc = 0.0f32;
            for (j, &wyj) in wy.iter().enumerate() {
                let yy = clamp(y0 - 1 + j as isize, h);
                let row = &s[yy * w..(yy + 1) * w];
                let mut racc = 0.0f32;
                for (i, &wxi) in wx.iter().enumerate() {
                    let xx = clamp(x0 - 1 + i as isize, w);
                    racc += wxi * row[xx];
                }
                acc += wyj * racc;
            }
            o[oy * ow + ox] = acc;
        }
    }
    Ok(out)
}

/// Nearest-neighbour resize (used for quick masks and sanity baselines).
pub fn nearest_resize(src: &Tensor, oh: usize, ow: usize) -> Result<Tensor> {
    let (h, w) = check_2d(src, "nearest_resize")?;
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidShape {
            op: "nearest_resize",
            reason: "output dims must be positive".into(),
        });
    }
    let s = src.as_slice();
    let mut out = Tensor::zeros([oh, ow]);
    let o = out.as_mut_slice();
    for oy in 0..oh {
        let sy = (oy * h / oh).min(h - 1);
        for ox in 0..ow {
            let sx = (ox * w / ow).min(w - 1);
            o[oy * ow + ox] = s[sy * w + sx];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsr_tensor::Rng;

    #[test]
    fn kernel_partition_of_unity() {
        // Σ_j k(d + j) = 1 for any phase d — bicubic preserves constants.
        for &d in &[0.0f32, 0.25, 0.5, 0.9] {
            let s = cubic_kernel(d + 1.0)
                + cubic_kernel(d)
                + cubic_kernel(d - 1.0)
                + cubic_kernel(d - 2.0);
            assert!((s - 1.0).abs() < 1e-5, "phase {d}: {s}");
        }
    }

    #[test]
    fn identity_resize_is_identity() {
        let mut rng = Rng::seed_from(1);
        let img = Tensor::rand_uniform([7, 9], 0.0, 10.0, &mut rng);
        let out = bicubic_resize(&img, 7, 9).unwrap();
        for (a, b) in out.as_slice().iter().zip(img.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn constant_image_stays_constant() {
        let img = Tensor::full([4, 4], 3.5);
        let up = bicubic_resize(&img, 16, 16).unwrap();
        for v in up.as_slice() {
            assert!((v - 3.5).abs() < 1e-4);
        }
    }

    #[test]
    fn upscaling_interpolates_gradient() {
        // A horizontal ramp stays monotone after upscaling.
        let img = Tensor::from_vec([1, 4], vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let up = bicubic_resize(&img, 1, 16).unwrap();
        let v = up.as_slice();
        for i in 1..16 {
            assert!(v[i] >= v[i - 1] - 1e-3, "not monotone at {i}");
        }
    }

    #[test]
    fn bicubic_beats_nearest_on_smooth_fields() {
        // Downsample a smooth field, upsample both ways: bicubic closer.
        let mut fine = Tensor::zeros([16, 16]);
        for y in 0..16 {
            for x in 0..16 {
                let v = ((y as f32 / 5.0).sin() + (x as f32 / 4.0).cos()) * 10.0;
                fine.set(&[y, x], v).unwrap();
            }
        }
        // 4×4 block means.
        let mut coarse = Tensor::zeros([4, 4]);
        for by in 0..4 {
            for bx in 0..4 {
                let mut s = 0.0;
                for y in 0..4 {
                    for x in 0..4 {
                        s += fine.get(&[by * 4 + y, bx * 4 + x]).unwrap();
                    }
                }
                coarse.set(&[by, bx], s / 16.0).unwrap();
            }
        }
        let bi = bicubic_resize(&coarse, 16, 16).unwrap();
        let nn = nearest_resize(&coarse, 16, 16).unwrap();
        let e_bi = bi.mse(&fine).unwrap();
        let e_nn = nn.mse(&fine).unwrap();
        assert!(e_bi < e_nn, "bicubic {e_bi} vs nearest {e_nn}");
    }

    #[test]
    fn nearest_exact_on_integer_factors() {
        let img = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let up = nearest_resize(&img, 4, 4).unwrap();
        assert_eq!(up.get(&[0, 0]), Some(1.0));
        assert_eq!(up.get(&[0, 3]), Some(2.0));
        assert_eq!(up.get(&[3, 0]), Some(3.0));
        assert_eq!(up.get(&[3, 3]), Some(4.0));
    }

    #[test]
    fn error_paths() {
        let img = Tensor::zeros([4]);
        assert!(bicubic_resize(&img, 2, 2).is_err());
        let img = Tensor::zeros([2, 2]);
        assert!(bicubic_resize(&img, 0, 2).is_err());
        assert!(nearest_resize(&img, 2, 0).is_err());
    }
}
