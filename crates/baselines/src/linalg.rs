//! Small dense linear algebra for the regression-based baselines:
//! Gaussian elimination with partial pivoting, ridge solves and
//! least-squares projections. Sizes here are patch-dictionary scale
//! (tens of unknowns), so an O(n³) direct solver is the right tool.

use mtsr_tensor::matmul::{matmul, matmul_tn};
use mtsr_tensor::{Result, Tensor, TensorError};

/// Solves `A · X = B` for square `A: [n, n]`, `B: [n, m]` via Gaussian
/// elimination with partial pivoting. Fails on (numerically) singular `A`.
pub fn solve(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let ad = a.dims();
    let bd = b.dims();
    if ad.len() != 2 || ad[0] != ad[1] || bd.len() != 2 || bd[0] != ad[0] {
        return Err(TensorError::InvalidShape {
            op: "solve",
            reason: format!("need A [n,n], B [n,m]; got {} / {}", a.shape(), b.shape()),
        });
    }
    let n = ad[0];
    let m = bd[1];
    // Augmented working copies in f64 for stability.
    let mut aw: Vec<f64> = a.as_slice().iter().map(|&v| v as f64).collect();
    let mut bw: Vec<f64> = b.as_slice().iter().map(|&v| v as f64).collect();
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = aw[col * n + col].abs();
        for r in col + 1..n {
            let v = aw[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-12 {
            return Err(TensorError::InvalidShape {
                op: "solve",
                reason: format!("singular matrix (pivot {best:e} at column {col})"),
            });
        }
        if piv != col {
            for k in 0..n {
                aw.swap(col * n + k, piv * n + k);
            }
            for k in 0..m {
                bw.swap(col * m + k, piv * m + k);
            }
        }
        let d = aw[col * n + col];
        for r in col + 1..n {
            let f = aw[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                aw[r * n + k] -= f * aw[col * n + k];
            }
            for k in 0..m {
                bw[r * m + k] -= f * bw[col * m + k];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n * m];
    for r in (0..n).rev() {
        for k in 0..m {
            let mut s = bw[r * m + k];
            for c in r + 1..n {
                s -= aw[r * n + c] * x[c * m + k];
            }
            x[r * m + k] = s / aw[r * n + r];
        }
    }
    Tensor::from_vec([n, m], x.into_iter().map(|v| v as f32).collect())
}

/// Ridge regression: returns `W: [p, q]` minimising
/// `‖X·W − Y‖² + λ‖W‖²` for `X: [n, p]`, `Y: [n, q]`,
/// i.e. `W = (XᵀX + λI)⁻¹ XᵀY`.
pub fn ridge(x: &Tensor, y: &Tensor, lambda: f32) -> Result<Tensor> {
    let xd = x.dims();
    let yd = y.dims();
    if xd.len() != 2 || yd.len() != 2 || xd[0] != yd[0] {
        return Err(TensorError::InvalidShape {
            op: "ridge",
            reason: format!("need X [n,p], Y [n,q]; got {} / {}", x.shape(), y.shape()),
        });
    }
    let p = xd[1];
    let mut gram = matmul_tn(x, x)?; // [p, p]
    for i in 0..p {
        let v = gram.get(&[i, i]).expect("diag") + lambda;
        gram.set(&[i, i], v)?;
    }
    let xty = matmul_tn(x, y)?; // [p, q]
    solve(&gram, &xty)
}

/// Least-squares coefficients of `y ≈ D · α` for a fixed column
/// sub-dictionary: solves the normal equations over the selected columns.
///
/// `d`: `[f, k]` dictionary, `cols`: selected column indices, `y`: `[f]`.
/// Returns the coefficient vector over `cols`. Used by the OMP inner loop.
pub fn lstsq_columns(d: &Tensor, cols: &[usize], y: &Tensor) -> Result<Vec<f32>> {
    let dd = d.dims();
    if dd.len() != 2 || y.dims() != [dd[0]] {
        return Err(TensorError::InvalidShape {
            op: "lstsq_columns",
            reason: format!("need D [f,k], y [f]; got {} / {}", d.shape(), y.shape()),
        });
    }
    let f = dd[0];
    let k = cols.len();
    if k == 0 {
        return Ok(Vec::new());
    }
    // Sub-matrix [f, k].
    let mut sub = Tensor::zeros([f, k]);
    {
        let s = sub.as_mut_slice();
        let dsl = d.as_slice();
        for (j, &c) in cols.iter().enumerate() {
            for r in 0..f {
                s[r * k + j] = dsl[r * dd[1] + c];
            }
        }
    }
    let yv = y.reshaped([f, 1])?;
    let gram = matmul_tn(&sub, &sub)?;
    // Tiny Tikhonov term guards collinear atom selections.
    let mut gram = gram;
    for i in 0..k {
        let v = gram.get(&[i, i]).expect("diag") + 1e-8;
        gram.set(&[i, i], v)?;
    }
    let rhs = matmul_tn(&sub, &yv)?;
    let alpha = solve(&gram, &rhs)?;
    Ok(alpha.as_slice().to_vec())
}

/// Dense matrix-vector product `A·v` for `A: [n, m]`, `v: [m]`.
pub fn matvec(a: &Tensor, v: &Tensor) -> Result<Tensor> {
    let col = v.reshaped([v.numel(), 1])?;
    let out = matmul(a, &col)?;
    let n = out.dims()[0];
    out.reshape([n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsr_tensor::Rng;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Tensor::from_vec([2, 2], vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let b = Tensor::from_vec([2, 1], vec![5.0, 10.0]).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!((x.as_slice()[0] - 1.0).abs() < 1e-5);
        assert!((x.as_slice()[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Tensor::from_vec([2, 2], vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let b = Tensor::from_vec([2, 1], vec![7.0, 9.0]).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!((x.as_slice()[0] - 9.0).abs() < 1e-6);
        assert!((x.as_slice()[1] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn solve_random_roundtrip() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::rand_normal([6, 6], 0.0, 1.0, &mut rng);
        let x_true = Tensor::rand_normal([6, 2], 0.0, 1.0, &mut rng);
        let b = matmul(&a, &x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        for (u, v) in x.as_slice().iter().zip(x_true.as_slice()) {
            assert!((u - v).abs() < 1e-3, "{u} vs {v}");
        }
    }

    #[test]
    fn solve_rejects_singular() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        let b = Tensor::from_vec([2, 1], vec![1.0, 2.0]).unwrap();
        assert!(solve(&a, &b).is_err());
    }

    #[test]
    fn ridge_recovers_linear_map_with_small_lambda() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::rand_normal([50, 4], 0.0, 1.0, &mut rng);
        let w_true = Tensor::rand_normal([4, 2], 0.0, 1.0, &mut rng);
        let y = matmul(&x, &w_true).unwrap();
        let w = ridge(&x, &y, 1e-6).unwrap();
        for (u, v) in w.as_slice().iter().zip(w_true.as_slice()) {
            assert!((u - v).abs() < 1e-3);
        }
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let mut rng = Rng::seed_from(3);
        let x = Tensor::rand_normal([30, 3], 0.0, 1.0, &mut rng);
        let y = Tensor::rand_normal([30, 1], 0.0, 1.0, &mut rng);
        let w_small = ridge(&x, &y, 1e-6).unwrap();
        let w_big = ridge(&x, &y, 1e4).unwrap();
        assert!(w_big.sq_norm() < 1e-3 * w_small.sq_norm());
    }

    #[test]
    fn lstsq_columns_exact_when_y_in_span() {
        let mut rng = Rng::seed_from(4);
        let d = Tensor::rand_normal([8, 5], 0.0, 1.0, &mut rng);
        // y = 2·col1 − col3
        let ds = d.as_slice();
        let y: Vec<f32> = (0..8)
            .map(|r| 2.0 * ds[r * 5 + 1] - ds[r * 5 + 3])
            .collect();
        let y = Tensor::from_vec([8], y).unwrap();
        let alpha = lstsq_columns(&d, &[1, 3], &y).unwrap();
        assert!((alpha[0] - 2.0).abs() < 1e-4);
        assert!((alpha[1] + 1.0).abs() < 1e-4);
        assert!(lstsq_columns(&d, &[], &y).unwrap().is_empty());
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]).unwrap();
        let v = Tensor::from_vec([3], vec![3.0, 4.0, 5.0]).unwrap();
        let out = matvec(&a, &v).unwrap();
        assert_eq!(out.as_slice(), &[13.0, -1.0]);
    }
}
