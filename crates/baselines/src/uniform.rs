//! Uniform interpolation — the operators' standard assumption \[8\] that
//! "users and traffic are uniformly distributed, irrespective of the
//! geographical layout of coverage areas".

use crate::SuperResolver;
use mtsr_tensor::{Result, Rng, Tensor};
use mtsr_traffic::Dataset;

/// Assigns every sub-cell its probe's mean. Exact on the probe averages
/// by construction (mass-preserving) but blind to sub-probe structure.
#[derive(Debug, Default, Clone, Copy)]
pub struct UniformSr;

impl UniformSr {
    /// Creates the method (stateless).
    pub fn new() -> Self {
        UniformSr
    }
}

impl SuperResolver for UniformSr {
    fn name(&self) -> &'static str {
        "Uniform"
    }

    fn fit(&mut self, _ds: &Dataset, _rng: &mut Rng) -> Result<()> {
        Ok(())
    }

    fn predict(&mut self, ds: &Dataset, t: usize) -> Result<Tensor> {
        let coarse = crate::latest_coarse(ds, t)?;
        let layout = ds.layout();
        // The square projection stores probe means in layout order; the
        // first `num_probes` entries are real, the rest padding.
        let means = coarse.as_slice()[..layout.num_probes()].to_vec();
        layout.uniform_upsample(&means)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsr_traffic::{
        CityConfig, Dataset, DatasetConfig, MilanGenerator, MtsrInstance, ProbeLayout,
    };

    fn dataset(instance: MtsrInstance, grid_cfg: CityConfig) -> Dataset {
        let mut rng = Rng::seed_from(11);
        let gen = MilanGenerator::new(&grid_cfg, &mut rng).unwrap();
        let movie = gen
            .generate(DatasetConfig::tiny().total(), &mut rng)
            .unwrap();
        let layout = ProbeLayout::for_instance(gen.city(), instance).unwrap();
        Dataset::build(&movie, layout, DatasetConfig::tiny()).unwrap()
    }

    #[test]
    fn uniform_is_piecewise_constant_and_mass_preserving() {
        let ds = dataset(MtsrInstance::Up4, CityConfig::tiny());
        let t = ds.usable_indices(mtsr_traffic::Split::Test)[0];
        let mut m = UniformSr::new();
        m.fit(&ds, &mut Rng::seed_from(0)).unwrap();
        let pred = m.predict(&ds, t).unwrap();
        assert_eq!(pred.dims(), &[20, 20]);
        // Constant within each 4×4 probe block.
        for by in 0..5 {
            for bx in 0..5 {
                let v = pred.get(&[by * 4, bx * 4]).unwrap();
                for y in 0..4 {
                    for x in 0..4 {
                        assert_eq!(pred.get(&[by * 4 + y, bx * 4 + x]), Some(v));
                    }
                }
            }
        }
        // Aggregating the prediction reproduces the coarse input exactly.
        let truth = ds.sample_at(t).unwrap().target;
        let truth2d = truth.reshaped([20, 20]).unwrap();
        let agg_pred = ds.layout().aggregate(&pred).unwrap();
        let agg_truth = ds.layout().aggregate(&truth2d).unwrap();
        for (a, b) in agg_pred.iter().zip(&agg_truth) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn uniform_has_nonzero_error_on_structured_traffic() {
        let ds = dataset(MtsrInstance::Up4, CityConfig::tiny());
        let t = ds.usable_indices(mtsr_traffic::Split::Test)[0];
        let mut m = UniformSr::new();
        let pred = m.predict(&ds, t).unwrap();
        let truth = ds.sample_at(t).unwrap().target.reshaped([20, 20]).unwrap();
        assert!(pred.mse(&truth).unwrap() > 0.0);
    }
}
