//! Agile network resource management (paper §6): use fine-grained
//! inferences to provision capacity per sub-cell instead of spreading the
//! probe aggregate uniformly.
//!
//! An operator provisions each cell for `headroom ×` its anticipated
//! traffic. Under-provisioned cells congest (demand above capacity);
//! over-provisioned cells waste capacity. This example compares the
//! congestion/waste trade-off when anticipation comes from (a) the
//! uniformity assumption the paper criticises [8] and (b) ZipNet-GAN
//! inference — both computed *only* from the coarse probe aggregates.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use zipnet_gan::core::ArchScale;
use zipnet_gan::prelude::*;
use zipnet_gan::tensor::{Tensor, TensorError};
use zipnet_gan::traffic::{Dataset, Split, SuperResolver};

/// Congested traffic (demand above capacity) and wasted capacity, in MB.
fn provision_outcome(anticipated: &Tensor, actual: &Tensor, headroom: f32) -> (f64, f64) {
    let mut congested = 0.0f64;
    let mut wasted = 0.0f64;
    for (&a, &t) in anticipated.as_slice().iter().zip(actual.as_slice()) {
        let capacity = headroom * a.max(0.0);
        if t > capacity {
            congested += (t - capacity) as f64;
        } else {
            wasted += (capacity - t) as f64;
        }
    }
    (congested, wasted)
}

fn main() -> Result<(), TensorError> {
    let mut rng = Rng::seed_from(31);
    let mut city = CityConfig::small();
    city.grid = 20;
    let generator = MilanGenerator::new(&city, &mut rng)?;
    let cfg = DatasetConfig {
        s: 3,
        train: 160,
        valid: 40,
        test: 60,
        augment: None,
    };
    let movie = generator.generate(cfg.total(), &mut rng)?;
    let layout = ProbeLayout::for_instance(generator.city(), MtsrInstance::Up4)?;
    let ds = Dataset::build(&movie, layout, cfg)?;

    let mut train_cfg = GanTrainingConfig::paper(150, 25, 4);
    train_cfg.lr = 1e-3;
    let mut model = MtsrModel::zipnet_gan(ArchScale::Tiny, train_cfg);
    println!("training ZipNet-GAN for the provisioning loop...");
    model.fit(&ds, &mut rng)?;
    let mut uniform = UniformSr::new();
    uniform.fit(&ds, &mut rng)?;

    let headroom = 1.3; // capacity = 1.3x anticipated demand
    let test_idx = ds.usable_indices(Split::Test);
    let mut totals = [(0.0f64, 0.0f64); 2]; // (congested, wasted) per method
    let mut demand = 0.0f64;
    for &t in test_idx.iter().take(20) {
        let actual = ds.fine_frame_raw(t)?;
        demand += actual.sum() as f64;
        // Both methods anticipate from the *previous* frame's coarse
        // measurements only (a one-step-ahead provisioning loop).
        let zip = ds.denormalize(&model.predict(&ds, t - 1)?);
        let uni = ds.denormalize(&uniform.predict(&ds, t - 1)?);
        for (i, anticipated) in [&zip, &uni].into_iter().enumerate() {
            let (c, w) = provision_outcome(anticipated, &actual, headroom);
            totals[i].0 += c;
            totals[i].1 += w;
        }
    }

    println!("\nprovisioning with {headroom}x headroom over 20 test intervals");
    println!("total demand: {:.0} MB", demand);
    for (name, (congested, wasted)) in [("ZipNet-GAN", totals[0]), ("Uniform   ", totals[1])] {
        println!(
            "{name}: congested {:8.0} MB ({:4.1}% of demand)   over-provision waste {:8.0} MB",
            congested,
            100.0 * congested / demand,
            wasted
        );
    }
    // The operator's objective is total misallocation: traffic that
    // congests plus capacity bought for nobody. Uniform can only trade one
    // for the other; fine-grained anticipation shrinks both at once.
    let mis_z = totals[0].0 + totals[0].1;
    let mis_u = totals[1].0 + totals[1].1;
    println!(
        "\ntotal misallocated (congested + wasted): ZipNet-GAN {:.0} MB vs Uniform {:.0} MB",
        mis_z, mis_u
    );
    if mis_z < mis_u {
        println!(
            "fine-grained inference cuts misallocation by {:.0}% at equal headroom —",
            100.0 * (1.0 - mis_z / mis_u)
        );
        println!("the paper's §6 'agile network resource management' argument.");
    } else {
        println!("(at this tiny training budget the inference did not beat uniform;");
        println!(" increase the training steps — see EXPERIMENTS.md scale notes)");
    }
    Ok(())
}
