//! Events localisation & response (paper §6): use a trained ZipNet-GAN as
//! an anomaly detector operating only on coarse probe measurements.
//!
//! A "football match" traffic surge is injected into a suburban area of
//! the *test* period. The model — trained on event-free data — receives
//! only the smoothed coarse aggregates, yet its fine-grained inference
//! localises the surge (paper §5.5, Fig. 13).
//!
//! ```sh
//! cargo run --release --example event_detection
//! ```

use zipnet_gan::core::ArchScale;
use zipnet_gan::prelude::*;
use zipnet_gan::tensor::{Tensor, TensorError};
use zipnet_gan::traffic::{AnomalyEvent, Dataset, Split, SuperResolver};

/// Argmax cell of the difference between two traffic maps.
fn hottest_cell(diff: &Tensor) -> (usize, usize, f32) {
    let g = diff.dims()[0];
    let mut best = (0, 0, f32::NEG_INFINITY);
    for y in 0..g {
        for x in 0..g {
            let v = diff.get(&[y, x]).expect("in range");
            if v > best.2 {
                best = (y, x, v);
            }
        }
    }
    best
}

fn main() -> Result<(), TensorError> {
    let mut rng = Rng::seed_from(7);
    let mut city = CityConfig::small();
    city.grid = 20;
    let generator = MilanGenerator::new(&city, &mut rng)?;
    let cfg = DatasetConfig {
        s: 3,
        train: 160,
        valid: 40,
        test: 60,
        augment: None,
    };
    let clean_movie = generator.generate(cfg.total(), &mut rng)?;

    // Inject a strong localised event into the test window only.
    let event = AnomalyEvent {
        y: 15,
        x: 4,
        radius: 1.2,
        magnitude_mb: 3000.0,
    };
    let mut event_movie = clean_movie.clone();
    let test_start = cfg.train + cfg.valid;
    event.apply_to_movie(&mut event_movie, test_start..cfg.total())?;

    let layout = ProbeLayout::for_instance(generator.city(), MtsrInstance::Up4)?;
    let ds_clean = Dataset::build(&clean_movie, layout.clone(), cfg)?;
    let ds_event = Dataset::build(&event_movie, layout, cfg)?;

    // Train on clean traffic only — the model has never seen an event.
    let mut train_cfg = GanTrainingConfig::paper(150, 20, 4);
    train_cfg.lr = 1e-3;
    let mut model = MtsrModel::zipnet_gan(ArchScale::Tiny, train_cfg);
    println!("training on event-free traffic...");
    model.fit(&ds_clean, &mut rng)?;

    // At test time the operator only sees coarse aggregates of the event.
    let t = ds_event.usable_indices(Split::Test)[10];
    let pred_event = ds_event.denormalize(&model.predict(&ds_event, t)?);
    let pred_clean = ds_clean.denormalize(&model.predict(&ds_clean, t)?);

    // Anomaly score: where does the inferred map deviate from the
    // expected (clean-input) inference?
    let diff = pred_event.sub(&pred_clean)?;
    let (y, x, surge) = hottest_cell(&diff);
    println!(
        "injected event at ({}, {}), peak +{:.0} MB",
        event.y, event.x, event.magnitude_mb
    );
    println!("detector localises surge at ({y}, {x}), response +{surge:.0} MB");
    let dist = ((y as f32 - event.y as f32).powi(2) + (x as f32 - event.x as f32).powi(2)).sqrt();
    println!(
        "localisation error: {dist:.1} cells — {}",
        if dist <= 3.0 {
            "event localised (within 3 cells)"
        } else {
            "localisation weak at this tiny training budget"
        }
    );
    Ok(())
}
