//! Quickstart: train a small ZipNet-GAN on synthetic city traffic and
//! super-resolve a test snapshot — the 60-second tour of the library.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use zipnet_gan::core::ArchScale;
use zipnet_gan::metrics::MILAN_PEAK_MB;
use zipnet_gan::prelude::*;
use zipnet_gan::tensor::TensorError;
use zipnet_gan::traffic::{Split, SuperResolver};

fn main() -> Result<(), TensorError> {
    // 1. A deterministic synthetic city (the Telecom Italia Milan data is
    //    proprietary; see DESIGN.md for the substitution argument).
    let mut rng = Rng::seed_from(42);
    let mut city = CityConfig::small();
    city.grid = 20; // keep the quickstart fast on one core
    let generator = MilanGenerator::new(&city, &mut rng)?;

    // 2. Two synthetic "days" of 10-minute traffic snapshots.
    let cfg = DatasetConfig {
        s: 3,
        train: 160,
        valid: 40,
        test: 60,
        augment: None,
    };
    let movie = generator.generate(cfg.total(), &mut rng)?;
    println!(
        "generated {} snapshots of a {}x{} cell city ({:.0}..{:.0} MB per cell)",
        movie.dims()[0],
        city.grid,
        city.grid,
        movie.min(),
        movie.max()
    );

    // 3. Probes: the up-4 instance of Table 1 (each probe covers 4x4
    //    sub-cells, so the model sees 16x fewer measurement points).
    let layout = ProbeLayout::for_instance(generator.city(), MtsrInstance::Up4)?;
    let ds = Dataset::build(&movie, layout, cfg)?;

    // 4. Train ZipNet-GAN (Algorithm 1: MSE pre-training, then the
    //    adversarial phase with the paper's Eq. 9 loss).
    let mut train_cfg = GanTrainingConfig::paper(150, 30, 4);
    train_cfg.lr = 1e-3; // raised from the paper's 1e-4 to fit a tiny budget
    let mut model = MtsrModel::zipnet_gan(ArchScale::Tiny, train_cfg);
    println!("training ZipNet-GAN (tiny preset)...");
    model.fit(&ds, &mut rng)?;
    let report = model.report.as_ref().expect("fit stores a report");
    println!(
        "pre-train MSE {:.3} -> {:.3}; {} adversarial iterations, collapsed: {}",
        report.pretrain_mse.first().copied().unwrap_or(f32::NAN),
        report.pretrain_mse.last().copied().unwrap_or(f32::NAN),
        report.g_loss.len(),
        report.collapsed(10),
    );

    // 5. Super-resolve a test snapshot and score it against ground truth.
    let t = ds.usable_indices(Split::Test)[5];
    let pred = ds.denormalize(&model.predict(&ds, t)?);
    let truth = ds.fine_frame_raw(t)?;
    println!(
        "test frame {t}: NRMSE {:.3}  PSNR {:.1} dB  SSIM {:.3}",
        nrmse(&pred, &truth)?,
        psnr(&pred, &truth, MILAN_PEAK_MB)?,
        ssim(&pred, &truth, MILAN_PEAK_MB)?,
    );

    // 6. Compare with the operators' uniformity assumption.
    let mut uniform = UniformSr::new();
    uniform.fit(&ds, &mut rng)?;
    let pred_u = ds.denormalize(&uniform.predict(&ds, t)?);
    println!(
        "uniform baseline: NRMSE {:.3} (ZipNet-GAN should be lower)",
        nrmse(&pred_u, &truth)?
    );
    Ok(())
}
