//! Method shoot-out: all seven techniques of the paper's Fig. 9 on one
//! MTSR instance, printed as a ranking table — the workload a network
//! operator would run to choose an inference method for their probe
//! deployment.
//!
//! ```sh
//! cargo run --release --example method_comparison [up2|up4|up10|mixture]
//! ```

use zipnet_gan::baselines::{
    aplus::AplusConfig, sparse_coding::ScConfig, srcnn::SrcnnConfig, AplusSr, BicubicSr,
    SparseCodingSr, SrcnnSr, UniformSr,
};
use zipnet_gan::core::ArchScale;
use zipnet_gan::metrics::{score_snapshots, MILAN_PEAK_MB};
use zipnet_gan::prelude::*;
use zipnet_gan::tensor::TensorError;
use zipnet_gan::traffic::{Dataset, Split, SuperResolver};

fn main() -> Result<(), TensorError> {
    let instance = match std::env::args().nth(1).as_deref() {
        Some("up2") => MtsrInstance::Up2,
        Some("up10") => MtsrInstance::Up10,
        Some("mixture") => MtsrInstance::Mixture,
        _ => MtsrInstance::Up4,
    };

    let mut rng = Rng::seed_from(11);
    let mut city = CityConfig::small();
    // The mixture deployment needs a grid ≥ 40; homogeneous probes are
    // fine on a faster 20-cell city.
    city.grid = if instance == MtsrInstance::Mixture {
        40
    } else {
        20
    };
    let generator = MilanGenerator::new(&city, &mut rng)?;
    let cfg = DatasetConfig {
        s: 3,
        train: 160,
        valid: 40,
        test: 60,
        augment: None,
    };
    let movie = generator.generate(cfg.total(), &mut rng)?;
    let layout = ProbeLayout::for_instance(generator.city(), instance)?;
    println!(
        "instance {}: {} probes over {}x{} cells (avg coverage r_f = {:.0})",
        instance.label(),
        layout.num_probes(),
        city.grid,
        city.grid,
        layout.avg_upscaling()
    );
    let ds = Dataset::build(&movie, layout, cfg)?;

    let mut train_cfg = GanTrainingConfig::paper(120, 25, 4);
    train_cfg.lr = 1e-3;
    let methods: Vec<Box<dyn SuperResolver>> = vec![
        Box::new(UniformSr::new()),
        Box::new(BicubicSr::new()),
        Box::new(SparseCodingSr::with_config(ScConfig::tiny())),
        Box::new(AplusSr::with_config(AplusConfig::tiny())),
        Box::new(SrcnnSr::with_config(SrcnnConfig::tiny())),
        Box::new(MtsrModel::zipnet(ArchScale::Tiny, train_cfg)),
        Box::new(MtsrModel::zipnet_gan(ArchScale::Tiny, train_cfg)),
    ];

    let test_idx = ds.usable_indices(Split::Test);
    let mut results = Vec::new();
    for mut method in methods {
        print!("fitting {:<11}... ", method.name());
        method.fit(&ds, &mut rng)?;
        let mut pairs = Vec::new();
        for &t in test_idx.iter().take(15) {
            let pred = ds.denormalize(&method.predict(&ds, t)?);
            pairs.push((pred, ds.fine_frame_raw(t)?));
        }
        let s = score_snapshots(&pairs, MILAN_PEAK_MB)?;
        println!(
            "NRMSE {:.3}  PSNR {:6.2}  SSIM {:.3}",
            s.nrmse, s.psnr, s.ssim
        );
        results.push((method.name(), s));
    }

    results.sort_by(|a, b| a.1.nrmse.partial_cmp(&b.1.nrmse).expect("finite"));
    println!("\nranking by NRMSE (best first):");
    for (i, (name, s)) in results.iter().enumerate() {
        println!("  {}. {:<11} NRMSE {:.3}", i + 1, name, s.nrmse);
    }
    Ok(())
}
