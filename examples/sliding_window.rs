//! The §4 production pipeline: train on cropped sub-frames (the paper's
//! data-augmentation trick) and serve city-wide inferences by sliding the
//! generator over the grid with moving-average reassembly.
//!
//! ```sh
//! cargo run --release --example sliding_window
//! ```

use zipnet_gan::core::ArchScale;
use zipnet_gan::metrics::MILAN_PEAK_MB;
use zipnet_gan::prelude::*;
use zipnet_gan::tensor::TensorError;
use zipnet_gan::traffic::{Dataset, Split, SuperResolver};

fn main() -> Result<(), TensorError> {
    let mut rng = Rng::seed_from(23);
    let mut city = CityConfig::small();
    city.grid = 24;
    let generator = MilanGenerator::new(&city, &mut rng)?;

    // Cropping augmentation: 16x16 windows at 2-cell offsets — the scaled
    // version of the paper's 80x80-at-1-cell (441 crops per snapshot).
    let aug = AugmentConfig {
        window: 16,
        stride: 2,
    };
    let offsets = aug.offsets(city.grid)?.len();
    println!("augmentation: {offsets} crops per snapshot (paper: 441 at full scale)");
    let cfg = DatasetConfig {
        s: 3,
        train: 160,
        valid: 40,
        test: 60,
        augment: Some(aug),
    };
    let movie = generator.generate(cfg.total(), &mut rng)?;
    let layout = ProbeLayout::for_instance(generator.city(), MtsrInstance::Up4)?;
    let ds = Dataset::build(&movie, layout, cfg)?;

    // The generator trains on 16x16 windows (4x4 coarse inputs)...
    let mut train_cfg = GanTrainingConfig::paper(180, 0, 4);
    train_cfg.lr = 1e-3;
    let mut model = MtsrModel::zipnet(ArchScale::Tiny, train_cfg);
    println!("training on cropped sub-frames...");
    model.fit(&ds, &mut rng)?;

    // ...and serves the full 24x24 city three ways:
    let t = ds.usable_indices(Split::Test)[5];
    let truth = ds.fine_frame_raw(t)?;

    // (a) one-shot: fully convolutional, just feed the whole coarse frame;
    let direct = ds.denormalize(&model.predict(&ds, t)?);

    // (b) the paper's sliding-window + moving-average reassembly;
    let gen = model.generator_mut().expect("fitted");
    let pipeline = MtsrPipeline::new(16, 4);
    let windowed = {
        let pred = pipeline.predict_full(gen, &ds, t)?;
        ds.denormalize(&pred)
    };

    // (c) coarse windows with no overlap (fastest, seam artefacts).
    let tiled = {
        let pred = MtsrPipeline::new(8, 8).predict_full(gen, &ds, t)?;
        ds.denormalize(&pred)
    };

    for (name, pred) in [
        ("direct full-frame ", &direct),
        ("sliding window 16/4", &windowed),
        ("tiled 8/8          ", &tiled),
    ] {
        println!(
            "{name}: NRMSE {:.3}  SSIM {:.3}",
            nrmse(pred, &truth)?,
            ssim(pred, &truth, MILAN_PEAK_MB)?,
        );
    }
    println!("\nthe overlapped sliding window smooths window-boundary seams (§4).");
    Ok(())
}
