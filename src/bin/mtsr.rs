//! `mtsr` — command-line front-end for the ZipNet-GAN reproduction.
//!
//! ```text
//! mtsr simulate --grid 40 --days 4 --seed 42 --out movie.csv
//! mtsr train    --instance up4 --grid 40 --steps 300 --gan --seed 42 --out model.ckpt
//! mtsr eval     --instance up4 --grid 40 --seed 42 --model model.ckpt
//! mtsr stream   --instance up4 --grid 40 --seed 42 --model model.ckpt --frames 12
//! ```
//!
//! Deterministic: the same `--seed` regenerates the same city, traffic and
//! splits, so a model trained by `train` is evaluated by `eval` on exactly
//! the data it expects. Argument parsing is hand-rolled to keep the
//! dependency set minimal.
//!
//! Every subcommand accepts `--telemetry <path>`: the metrics registry is
//! enabled for the run and a [`TelemetryReport`] (JSON) is written on
//! success — per-epoch losses for each training phase, per-layer
//! forward/backward timings, and kernel span statistics.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use zipnet_gan::core::checkpoint::{self, CheckpointPolicy};
use zipnet_gan::core::{
    fine_tune_container, plan_zipnet, ArchScale, FusePolicy, GanTrainingConfig, MtsrModel,
    MtsrPipeline, OnlineTuneConfig, StreamingPredictor, TrafficAnomalyDetector, ZipNet,
    ZipNetConfig,
};
use zipnet_gan::metrics::{nrmse, psnr, ssim, MILAN_PEAK_MB};
use zipnet_gan::prelude::*;
use zipnet_gan::serve::{
    signals, window_nrmse, AdaptConfig, InferOutcome, InferRequest, ModelSpec, Planner,
    RemotePredictor, ServeClient, ServeConfig, Server, TruthRequest, TunedModel, Tuner,
};
use zipnet_gan::telemetry::{PhaseReport, TelemetryReport};
use zipnet_gan::tensor::TensorError;
use zipnet_gan::traffic::{AnomalyEvent, Dataset, RegimeShift, Split, SuperResolver};

/// What a subcommand hands back for the optional telemetry report:
/// training phases when it trained, nothing otherwise.
type CmdOutcome = Result<Vec<PhaseReport>, String>;

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `--name value` / `--name` (boolean) pairs. Stray positional
    /// tokens are an error — they are invariably a typo (`--steps300`) and
    /// used to be silently ignored.
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let Some(name) = argv[i].strip_prefix("--") else {
                return Err(format!(
                    "unexpected argument `{}` (flags are written --name value)",
                    argv[i]
                ));
            };
            if name.is_empty() {
                return Err("empty flag `--`".to_string());
            }
            let value = if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                i += 1;
                argv[i].clone()
            } else {
                "true".to_string() // boolean flag
            };
            flags.insert(name.to_string(), value);
            i += 1;
        }
        Ok(Args { flags })
    }

    /// Rejects flags a subcommand does not know, instead of silently
    /// ignoring them (a misspelt `--step 500` used to train with the
    /// default step count).
    fn expect_known(&self, cmd: &str, known: &[&str]) -> Result<(), String> {
        for name in self.flags.keys() {
            if !known.contains(&name.as_str()) {
                return Err(format!(
                    "unknown flag --{name} for `mtsr {cmd}` (known: {})",
                    known
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
        }
        Ok(())
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// `--name N` with a default; a malformed value is a usage error
    /// (`--steps 3OO` used to silently fall back to the default).
    fn usize_flag(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                format!("invalid value `{v}` for --{name}: expected an unsigned integer")
            }),
        }
    }

    /// Optional `--name N` without a default.
    fn usize_opt(&self, name: &str) -> Result<Option<usize>, String> {
        self.get(name)
            .map(|v| {
                v.parse().map_err(|_| {
                    format!("invalid value `{v}` for --{name}: expected an unsigned integer")
                })
            })
            .transpose()
    }

    fn u64_flag(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                format!("invalid value `{v}` for --{name}: expected an unsigned integer")
            }),
        }
    }

    fn f32_flag(&self, name: &str, default: f32) -> Result<f32, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{name}: expected a number")),
        }
    }

    fn bool_flag(&self, name: &str) -> Result<bool, String> {
        match self.get(name) {
            None => Ok(false),
            Some("true") => Ok(true),
            Some(v) => Err(format!(
                "--{name} is a boolean flag and takes no value (got `{v}`)"
            )),
        }
    }
}

fn parse_instance(s: Option<&str>) -> Result<MtsrInstance, String> {
    match s.unwrap_or("up4") {
        "up2" => Ok(MtsrInstance::Up2),
        "up4" => Ok(MtsrInstance::Up4),
        "up10" => Ok(MtsrInstance::Up10),
        "mixture" => Ok(MtsrInstance::Mixture),
        other => Err(format!("unknown instance `{other}` (up2|up4|up10|mixture)")),
    }
}

/// City + traffic movie, deterministic in (grid, days, instance, seed).
/// The last two days are held out as validation and test.
fn generate_movie(
    grid: usize,
    days: usize,
    instance: MtsrInstance,
    s: usize,
    seed: u64,
) -> Result<(Tensor, ProbeLayout, DatasetConfig), TensorError> {
    let mut rng = Rng::seed_from(seed);
    let mut city = CityConfig::small();
    city.grid = grid;
    let gen = MilanGenerator::new(&city, &mut rng)?;
    let frames_per_day = 144;
    let total = days.max(3) * frames_per_day;
    let cfg = DatasetConfig {
        s,
        train: total - 2 * frames_per_day,
        valid: frames_per_day,
        test: frames_per_day,
        augment: None,
    };
    let movie = gen.generate(cfg.total(), &mut rng)?;
    let layout = ProbeLayout::for_instance(gen.city(), instance)?;
    Ok((movie, layout, cfg))
}

/// City + traffic + dataset, deterministic in (grid, days, instance, seed).
fn build_dataset(
    grid: usize,
    days: usize,
    instance: MtsrInstance,
    s: usize,
    seed: u64,
) -> Result<Dataset, TensorError> {
    let (movie, layout, cfg) = generate_movie(grid, days, instance, s, seed)?;
    Dataset::build(&movie, layout, cfg)
}

/// The training plan shared by `train` and the online fine-tune behind
/// `serve --adapt`: a container written by one must restore under the
/// other's config (the LR schedule is part of the container, and a
/// schedule mismatch is rejected on restore).
fn train_config(steps: usize, adv: usize) -> GanTrainingConfig {
    let mut cfg = GanTrainingConfig::paper(steps, adv, 8);
    cfg.lr = 1e-3;
    cfg.schedule = Some(zipnet_gan::nn::LrSchedule::Exponential {
        lr: 1e-3,
        period: 200,
        factor: 0.5,
    });
    cfg.clip_norm = Some(5.0);
    cfg
}

/// The container fingerprint for a training run. Everything that shapes
/// the data or the training plan goes in — resuming against different
/// data is rejected, while online fine-tuning only insists on the
/// geometry keys (instance/grid/s/arch).
#[allow(clippy::too_many_arguments)]
fn train_fingerprint(
    instance: MtsrInstance,
    grid: usize,
    days: usize,
    s: usize,
    seed: u64,
    steps: usize,
    adv: usize,
    gan: bool,
) -> String {
    format!(
        "mtsr-train/v1 instance={} grid={grid} days={days} s={s} seed={seed} \
         steps={steps} adv={adv} gan={gan} batch=8 arch=tiny",
        instance.label()
    )
}

fn cmd_simulate(args: &Args) -> CmdOutcome {
    args.expect_known("simulate", &["grid", "days", "seed", "out", "telemetry"])?;
    let grid = args.usize_flag("grid", 40)?;
    let days = args.usize_flag("days", 2)?;
    let seed = args.u64_flag("seed", 42)?;
    let out = args.get("out").unwrap_or("traffic.csv").to_string();
    let mut rng = Rng::seed_from(seed);
    let mut city = CityConfig::small();
    city.grid = grid;
    let gen = MilanGenerator::new(&city, &mut rng).map_err(|e| e.to_string())?;
    let movie = gen
        .generate(days * 144, &mut rng)
        .map_err(|e| e.to_string())?;
    let mut csv = String::from("t,y,x,traffic_mb\n");
    let d = movie.dims();
    for t in 0..d[0] {
        for y in 0..d[1] {
            for x in 0..d[2] {
                let v = movie.get(&[t, y, x]).expect("in range");
                csv.push_str(&format!("{t},{y},{x},{v:.2}\n"));
            }
        }
    }
    std::fs::write(&out, csv).map_err(|e| e.to_string())?;
    println!(
        "wrote {} frames of a {grid}x{grid} city to {out} ({:.0}..{:.0} MB per cell)",
        d[0],
        movie.min(),
        movie.max()
    );
    Ok(Vec::new())
}

fn cmd_train(args: &Args) -> CmdOutcome {
    args.expect_known(
        "train",
        &[
            "instance",
            "grid",
            "days",
            "s",
            "steps",
            "gan",
            "adv",
            "seed",
            "out",
            "telemetry",
            "resume",
            "checkpoint-every",
            "keep",
            "halt-after",
        ],
    )?;
    let grid = args.usize_flag("grid", 40)?;
    let days = args.usize_flag("days", 4)?;
    let s = args.usize_flag("s", 3)?;
    let seed = args.u64_flag("seed", 42)?;
    let steps = args.usize_flag("steps", 300)?;
    let gan = args.bool_flag("gan")?;
    let adv = args.usize_flag("adv", if gan { 40 } else { 0 })?;
    let out = args.get("out").unwrap_or("model.ckpt").to_string();
    let every = args.usize_opt("checkpoint-every")?;
    let keep = args.usize_flag("keep", 3)?;
    let halt_after = args.usize_opt("halt-after")?;
    let instance = parse_instance(args.get("instance"))?;
    let ds = build_dataset(grid, days, instance, s, seed).map_err(|e| e.to_string())?;

    // The checkpoint cadence flags deliberately stay out of the
    // fingerprint: an interrupted run and its uninterrupted twin must
    // share one.
    let fingerprint = train_fingerprint(instance, grid, days, s, seed, steps, adv, gan);
    let policy = CheckpointPolicy {
        path: PathBuf::from(&out),
        every,
        keep,
        fingerprint: fingerprint.clone(),
        halt_after,
    };
    let resume = match args.get("resume") {
        Some(path) => {
            let st = checkpoint::load_train_state(path).map_err(|e| e.to_string())?;
            st.validate_fingerprint(&fingerprint)
                .map_err(|e| e.to_string())?;
            println!(
                "resuming from {path} ({}+{} of {steps}+{adv} steps already done)",
                st.pretrain_done, st.adversarial_done
            );
            Some(st)
        }
        None => None,
    };

    let cfg = train_config(steps, adv);
    let mut model = if gan {
        MtsrModel::zipnet_gan(ArchScale::Tiny, cfg)
    } else {
        MtsrModel::zipnet(ArchScale::Tiny, cfg)
    };
    println!(
        "training {} on {} ({grid}x{grid}, S={s}, {steps}+{adv} steps)...",
        model.name(),
        instance.label()
    );
    let mut rng = Rng::seed_from(seed ^ 0x5eed);
    model
        .fit_with(&ds, &mut rng, Some(policy), resume.as_ref())
        .map_err(|e| e.to_string())?;
    let report = model.report.as_ref().expect("fit stores report");
    println!(
        "pre-train MSE {:.4} -> {:.4}{}",
        report.pretrain_mse.first().copied().unwrap_or(f32::NAN),
        report.pretrain_mse.last().copied().unwrap_or(f32::NAN),
        if adv > 0 {
            format!(", {} adversarial iterations", report.g_loss.len())
        } else {
            String::new()
        }
    );
    let phases = report.phases.clone();
    if report.halted {
        println!("halted by --halt-after; continue with --resume {out}.<NNNNNN> (latest snapshot)");
    } else {
        println!("saved training checkpoint to {out}");
    }
    Ok(phases)
}

/// Rebuilds the generator architecture for a dataset and loads weights
/// from either a training container or a legacy weights-only checkpoint.
fn load_generator(ds: &Dataset, path: &str, s: usize) -> Result<ZipNet, String> {
    load_generator_at(ds.layout().grid / ds.layout().square, path, s)
}

/// Geometry-only variant of [`load_generator`], used by the serve
/// planner to re-plan checkpoints without rebuilding the dataset.
fn load_generator_at(upscale: usize, path: &str, s: usize) -> Result<ZipNet, String> {
    let mut gen = ZipNet::new(&ZipNetConfig::tiny(upscale, s), &mut Rng::seed_from(0))
        .map_err(|e| e.to_string())?;
    checkpoint::load_generator_into(&mut gen, path).map_err(|e| e.to_string())?;
    Ok(gen)
}

fn cmd_eval(args: &Args) -> CmdOutcome {
    args.expect_known(
        "eval",
        &[
            "model",
            "instance",
            "grid",
            "days",
            "s",
            "seed",
            "telemetry",
        ],
    )?;
    let grid = args.usize_flag("grid", 40)?;
    let days = args.usize_flag("days", 4)?;
    let s = args.usize_flag("s", 3)?;
    let seed = args.u64_flag("seed", 42)?;
    let model_path = args.get("model").ok_or("--model <ckpt> required")?;
    let instance = parse_instance(args.get("instance"))?;
    let ds = build_dataset(grid, days, instance, s, seed).map_err(|e| e.to_string())?;
    let gen = load_generator(&ds, model_path, s)?;
    let mut model =
        MtsrModel::zipnet(ArchScale::Tiny, GanTrainingConfig::tiny()).with_generator(gen);

    let idx = ds.usable_indices(Split::Test);
    let take: Vec<usize> = idx
        .iter()
        .step_by((idx.len() / 12).max(1))
        .copied()
        .collect();
    let (mut se, mut sp, mut ss) = (0.0f64, 0.0f64, 0.0f64);
    for &t in &take {
        let pred = ds.denormalize(&model.predict(&ds, t).map_err(|e| e.to_string())?);
        let truth = ds.fine_frame_raw(t).map_err(|e| e.to_string())?;
        se += nrmse(&pred, &truth).map_err(|e| e.to_string())? as f64;
        sp += psnr(&pred, &truth, MILAN_PEAK_MB).map_err(|e| e.to_string())? as f64;
        ss += ssim(&pred, &truth, MILAN_PEAK_MB).map_err(|e| e.to_string())? as f64;
    }
    let n = take.len() as f64;
    println!(
        "{} on {} ({} test frames): NRMSE {:.3}  PSNR {:.2} dB  SSIM {:.3}",
        model_path,
        instance.label(),
        take.len(),
        se / n,
        sp / n,
        ss / n
    );
    Ok(Vec::new())
}

fn cmd_stream(args: &Args) -> CmdOutcome {
    args.expect_known(
        "stream",
        &[
            "model",
            "frames",
            "instance",
            "grid",
            "days",
            "s",
            "seed",
            "telemetry",
        ],
    )?;
    let grid = args.usize_flag("grid", 40)?;
    let days = args.usize_flag("days", 4)?;
    let s = args.usize_flag("s", 3)?;
    let seed = args.u64_flag("seed", 42)?;
    let frames = args.usize_flag("frames", 12)?;
    let model_path = args.get("model").ok_or("--model <ckpt> required")?;
    let instance = parse_instance(args.get("instance"))?;
    let ds = build_dataset(grid, days, instance, s, seed).map_err(|e| e.to_string())?;
    let gen = load_generator(&ds, model_path, s)?;
    let mut stream = StreamingPredictor::new(gen, ds.moments()).map_err(|e| e.to_string())?;
    let mut detector =
        TrafficAnomalyDetector::new(grid, 24, 0.3, 6.0).map_err(|e| e.to_string())?;

    let start = ds.range(Split::Test).start;
    println!("live stream: feeding {frames} coarse frames (S = {s} warm-up)...");
    for i in 0..frames {
        let t = start + i;
        let coarse = ds.coarse_frame_raw(t).map_err(|e| e.to_string())?;
        match stream.push(&coarse).map_err(|e| e.to_string())? {
            None => println!("t={t}: warming up"),
            Some(fine) => {
                let bucket = (t / 6) % 24; // hourly profile buckets
                let hits = detector.observe(bucket, &fine).map_err(|e| e.to_string())?;
                println!(
                    "t={t}: inferred {}x{} map, total {:.0} MB, {} anomaly flags",
                    fine.dims()[0],
                    fine.dims()[1],
                    fine.sum(),
                    hits.len()
                );
            }
        }
    }
    Ok(Vec::new())
}

/// Shared by `serve` and `client`: dataset-derived sliding-window
/// geometry for the given flags. Defaults cover the frame in aligned
/// `grid/2`-sided windows.
fn sliding_setup(
    args: &Args,
    ds: &Dataset,
    grid: usize,
) -> Result<(MtsrPipeline, zipnet_gan::core::SlidingGeometry), String> {
    let window = args.usize_flag("window", grid / 2)?;
    let stride = args.usize_flag("stride", window)?;
    let pipe = MtsrPipeline::new(window, stride);
    let geo = pipe.geometry(ds).map_err(|e| e.to_string())?;
    Ok((pipe, geo))
}

fn cmd_serve(args: &Args) -> CmdOutcome {
    args.expect_known(
        "serve",
        &[
            "model",
            "models",
            "addr",
            "instance",
            "grid",
            "days",
            "s",
            "seed",
            "window",
            "stride",
            "batch",
            "workers",
            "queue",
            "deadline-ms",
            "linger-ms",
            "max-conns",
            "fuse",
            "exact",
            "adapt",
            "drift-threshold",
            "drift-window",
            "adapt-pairs",
            "adapt-holdout",
            "adapt-steps",
            "telemetry",
        ],
    )?;
    let grid = args.usize_flag("grid", 40)?;
    let days = args.usize_flag("days", 4)?;
    let s = args.usize_flag("s", 3)?;
    let seed = args.u64_flag("seed", 42)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let instance = parse_instance(args.get("instance"))?;
    let ds = build_dataset(grid, days, instance, s, seed).map_err(|e| e.to_string())?;
    let (_pipe, geo) = sliding_setup(args, &ds, grid)?;
    let cw = args.usize_flag("window", grid / 2)? / geo.probe;
    let upscale = ds.layout().grid / ds.layout().square;

    // Tenants: one model id per `name=ckpt` entry of --models (ids in
    // listed order), or a single model 0 named `default` from --model.
    let mut tenants: Vec<(String, String)> = Vec::new();
    if let Some(spec) = args.get("models") {
        for item in spec.split(',') {
            let (name, path) = item.split_once('=').ok_or_else(|| {
                format!("--models expects comma-separated name=ckpt entries, got `{item}`")
            })?;
            if name.is_empty() || path.is_empty() {
                return Err(format!("--models entry `{item}` has an empty name or path"));
            }
            tenants.push((name.to_string(), path.to_string()));
        }
    } else if let Some(path) = args.get("model") {
        tenants.push(("default".to_string(), path.to_string()));
    } else {
        return Err("--model <ckpt> or --models name=ckpt[,name=ckpt...] required".to_string());
    }

    let batch = args.usize_flag("batch", 4)?;
    // BN folded into the weights by default (fastest f32 route); --fuse
    // selects exact (bit-identical to the eval forward), folded, or
    // quantized (int8 conv weights). --exact is kept as an alias for
    // `--fuse exact`.
    let policy = match args.get("fuse") {
        Some(name) => FusePolicy::parse(name)
            .ok_or_else(|| format!("--fuse must be exact|folded|quantized, got `{name}`"))?,
        None if args.bool_flag("exact")? => FusePolicy::Exact,
        None => FusePolicy::Folded,
    };

    // The planner both builds the initial plans and re-plans checkpoints
    // for hot reload (RELOAD frames and SIGHUP), off the event loop.
    let planner: Planner = Arc::new(move |_model, source| {
        let mut gen = load_generator_at(upscale, source, s).map_err(std::io::Error::other)?;
        let exec = plan_zipnet(&mut gen, policy, batch, cw, cw)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        Ok(Arc::clone(exec.plan()))
    });
    let mut specs = Vec::new();
    for (name, path) in &tenants {
        specs.push(ModelSpec {
            name: name.clone(),
            source: path.clone(),
            plan: planner(0, path).map_err(|e| format!("planning `{name}` ({path}): {e}"))?,
        });
    }

    // Online adaptation: TRUTH frames feed a rolling drift gauge; past
    // the threshold the daemon fine-tunes the recorded container on the
    // buffered pairs in a sidecar thread and hot-promotes the candidate
    // through the acceptance gate. The adapted container is written
    // next to the original (`<ckpt>.adapt`) so a promotion survives a
    // later RELOAD of the slot.
    let adapt = args.bool_flag("adapt")?;
    let adapt_cfg = AdaptConfig {
        threshold: args.f32_flag("drift-threshold", 0.5)?,
        window: args.usize_flag("drift-window", 32)?,
        min_pairs: args.usize_flag("adapt-pairs", 32)?,
        holdout: args.usize_flag("adapt-holdout", 8)?,
    };
    let adapt_steps = args.usize_flag("adapt-steps", 300)?;
    let tuner: Option<Tuner> = if adapt {
        let geometry = train_fingerprint(instance, grid, days, s, seed, 0, 0, false);
        Some(Arc::new(move |_model, source, pairs| {
            let out = format!("{}.adapt", source.trim_end_matches(".adapt"));
            let tune = OnlineTuneConfig {
                scale: ArchScale::Tiny,
                base: train_config(0, 0),
                upscale,
                s,
                steps: adapt_steps,
                expected_fingerprint: Some(geometry.clone()),
            };
            let outcome =
                fine_tune_container(source, Some(std::path::Path::new(&out)), &tune, pairs)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
            let mut gen = outcome.generator;
            let exec = plan_zipnet(&mut gen, policy, batch, cw, cw)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            Ok(TunedModel {
                plan: Arc::clone(exec.plan()),
                source: out,
            })
        }))
    } else {
        None
    };

    let cfg = ServeConfig {
        addr,
        queue_cap: args.usize_flag("queue", 64)?,
        workers: args.usize_flag("workers", 2)?,
        deadline: Duration::from_millis(args.u64_flag("deadline-ms", 2_000)?),
        linger: Duration::from_millis(args.u64_flag("linger-ms", 2)?),
        max_conns: args.usize_flag("max-conns", 4096)?,
        adapt: adapt.then_some(adapt_cfg),
        ..ServeConfig::default()
    };
    let handle =
        Server::start_adaptive(&cfg, specs, Some(planner), tuner).map_err(|e| e.to_string())?;
    signals::install();
    println!(
        "serving {} model(s) on {} (fuse policy {}, {} windows [S={s}, {cw}x{cw}] -> [{}x{}] \
         per replay, queue {}, {} workers, {} conns max; SIGHUP hot-reloads checkpoints, \
         SIGTERM or a SHUTDOWN frame drains gracefully)",
        tenants.len(),
        handle.local_addr(),
        policy.name(),
        batch,
        cw * geo.probe,
        cw * geo.probe,
        cfg.queue_cap,
        cfg.workers,
        cfg.max_conns,
    );
    for (id, (name, path)) in tenants.iter().enumerate() {
        println!("  model {id}: {name} <- {path}");
    }
    if let Some(ac) = &cfg.adapt {
        println!(
            "online adaptation on: drift threshold {:.4} over a {}-window rolling NRMSE \
             gauge; fine-tune {adapt_steps} steps from {} buffered pairs (+{} holdout), \
             promotion gated on beating the live model",
            ac.threshold, ac.window, ac.min_pairs, ac.holdout
        );
    }
    loop {
        if signals::triggered() {
            println!("termination signal: draining in-flight work...");
            handle.request_shutdown();
            break;
        }
        if handle.draining() {
            println!("shutdown frame received: draining in-flight work...");
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.join();
    println!("drain complete; all admitted requests answered");
    Ok(Vec::new())
}

fn cmd_client(args: &Args) -> CmdOutcome {
    args.expect_known(
        "client",
        &[
            "addr",
            "status",
            "shutdown",
            "reload",
            "stress",
            "requests",
            "model-id",
            "truth",
            "shift-at",
            "shift-gain",
            "shift-hotspot",
            "interval-ms",
            "drift-out",
            "frames",
            "instance",
            "grid",
            "days",
            "s",
            "seed",
            "window",
            "stride",
            "telemetry",
        ],
    )?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let model_id = args.usize_flag("model-id", 0)? as u32;
    let mut client = ServeClient::connect(&addr).map_err(|e| e.to_string())?;

    if args.bool_flag("status")? {
        print!("{}", client.status().map_err(|e| e.to_string())?);
        return Ok(Vec::new());
    }
    if args.bool_flag("shutdown")? {
        client.shutdown().map_err(|e| e.to_string())?;
        println!("shutdown acknowledged by {addr}; daemon is draining");
        return Ok(Vec::new());
    }
    if let Some(spec) = args.get("reload") {
        // Bare `--reload` re-plans the recorded checkpoint; a value
        // swaps in a new checkpoint path. `--model-id` picks the slot.
        let source = if spec == "true" { "" } else { spec };
        let generation = client.reload(model_id, source).map_err(|e| e.to_string())?;
        println!("model {model_id} reloaded; now serving plan generation {generation}");
        return Ok(Vec::new());
    }
    if let Some(conns) = args.usize_opt("stress")? {
        drop(client);
        return cmd_stress(&addr, model_id, conns, args.usize_flag("requests", 4)?);
    }
    if let Some(windows) = args.usize_opt("truth")? {
        return cmd_truth_stream(args, client, model_id, windows);
    }

    // Prediction mode: regenerate the dataset the daemon was started
    // with (same flags, same seed) and stream test frames through it.
    let grid = args.usize_flag("grid", 40)?;
    let days = args.usize_flag("days", 4)?;
    let s = args.usize_flag("s", 3)?;
    let seed = args.u64_flag("seed", 42)?;
    let frames = args.usize_flag("frames", 1)?;
    let instance = parse_instance(args.get("instance"))?;
    let ds = build_dataset(grid, days, instance, s, seed).map_err(|e| e.to_string())?;
    let (_pipe, geo) = sliding_setup(args, &ds, grid)?;
    let window = args.usize_flag("window", grid / 2)?;
    let mut remote =
        RemotePredictor::for_model(client, model_id, geo.origins, window, geo.grid, geo.probe)
            .map_err(|e| e.to_string())?;

    let idx = ds.usable_indices(Split::Test);
    let take = frames.min(idx.len());
    for &t in idx.iter().take(take) {
        let sample = ds.sample_at(t).map_err(|e| e.to_string())?;
        let sq = sample.input.dims()[2];
        let pred = remote
            .predict_frame(sample.input.as_slice(), sq)
            .map_err(|e| e.to_string())?;
        let pred = ds.denormalize(&pred);
        let truth = ds.fine_frame_raw(t).map_err(|e| e.to_string())?;
        let e = nrmse(&pred, &truth).map_err(|e| e.to_string())?;
        println!(
            "t={t}: remote {}x{} frame, total {:.0} MB, NRMSE {e:.3}",
            pred.dims()[0],
            pred.dims()[1],
            pred.sum()
        );
    }
    println!("predicted {take} frame(s) via {addr}");
    Ok(Vec::new())
}

/// Drift-scenario driver behind `client --truth N`: streams `N` coarse
/// test frames as INFER requests. The first `--shift-at` windows are
/// scored client-side (pre-shift baseline); from `--shift-at` onward
/// the frames come from a regime-shifted twin of the dataset
/// (multiplicative gain plus a sustained central hotspot) and each is
/// followed by a TRUTH frame under the same request id, so the
/// daemon's rolling gauge degrades on the new regime only, trips the
/// background fine-tune, and — the stream extends itself until the
/// promotion decision resolves — the gated candidate is hot-promoted.
/// Reports pre-shift / peak / final NRMSE and whether accuracy
/// recovered.
fn cmd_truth_stream(
    args: &Args,
    mut client: ServeClient,
    model_id: u32,
    windows: usize,
) -> CmdOutcome {
    let grid = args.usize_flag("grid", 40)?;
    let days = args.usize_flag("days", 4)?;
    let s = args.usize_flag("s", 3)?;
    let seed = args.u64_flag("seed", 42)?;
    let shift_at = args.usize_flag("shift-at", windows / 3)?;
    let gain = args.f32_flag("shift-gain", 1.0)?;
    let hotspot_mb = args.f32_flag("shift-hotspot", 20_000.0)?;
    // A live feed has inter-frame spacing; pacing the stream gives the
    // background fine-tune wall-clock time to land mid-stream.
    let interval = Duration::from_millis(args.u64_flag("interval-ms", 0)?);
    let instance = parse_instance(args.get("instance"))?;
    if shift_at == 0 || shift_at >= windows {
        return Err(format!(
            "--truth {windows} needs 0 < --shift-at < {windows} (got {shift_at}): the stream \
             must cover both regimes"
        ));
    }

    let (movie, layout, dcfg) =
        generate_movie(grid, days, instance, s, seed).map_err(|e| e.to_string())?;
    let base = Dataset::build(&movie, layout.clone(), dcfg).map_err(|e| e.to_string())?;
    // The shift starts at the test range, so the daemon's normalisation
    // (training moments) never saw it — the production drift situation.
    let mut shifted_movie = movie.clone();
    RegimeShift {
        from: base.range(Split::Test).start,
        gain,
        hotspot: (hotspot_mb != 0.0).then_some(AnomalyEvent {
            y: grid / 2,
            x: grid / 2,
            radius: grid as f32 * 0.3,
            magnitude_mb: hotspot_mb,
        }),
    }
    .apply(&mut shifted_movie)
    .map_err(|e| e.to_string())?;
    let shifted = Dataset::build(&shifted_movie, layout, dcfg).map_err(|e| e.to_string())?;

    // The stream serves whole coarse frames, one window per frame, so
    // prediction and truth line up one-to-one for the drift gauge.
    let sq = base.layout().square;
    let info = client.info_for(model_id).map_err(|e| e.to_string())?;
    if (info.s as usize, info.h as usize, info.w as usize) != (s, sq, sq) {
        return Err(format!(
            "daemon serves [{}, {}, {}] windows but --truth streams whole [{s}, {sq}, {sq}] \
             coarse frames; start `mtsr serve` with --window {grid}",
            info.s, info.h, info.w
        ));
    }
    println!(
        "truth stream: {windows} frames to {} (regime shift at {shift_at}: gain {gain}, \
         hotspot {hotspot_mb} MB)...",
        info.model
    );

    let idx = base.usable_indices(Split::Test);
    if idx.is_empty() {
        return Err("dataset has no usable test frames".to_string());
    }
    let mut scores: Vec<f32> = Vec::with_capacity(windows);
    let mut misses = 0usize;
    let mut shed = 0u64;
    // Pre-shift windows are scored client-side from the INFER reply
    // (no TRUTH frame), so the daemon's fine-tune corpus only ever
    // holds post-shift pairs — the fine-tune trains on the regime it
    // must adapt to, not on a mixture diluted by the old one. The
    // scoring function is the same `window_nrmse` the daemon applies
    // server-side, so the pre/post numbers are directly comparable.
    let mut stream_one = |client: &mut ServeClient,
                          ds: &Dataset,
                          frame: usize,
                          send_truth: bool,
                          scores: &mut Vec<f32>|
     -> Result<(), String> {
        let sample = ds
            .sample_at(idx[frame % idx.len()])
            .map_err(|e| e.to_string())?;
        let req = InferRequest {
            model: model_id,
            deadline_ms: 10_000,
            s: s as u32,
            h: sq as u32,
            w: sq as u32,
            data: sample.input.as_slice().to_vec(),
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        let pred = loop {
            if std::time::Instant::now() > deadline {
                return Err(format!("window {frame}: no reply within 120s"));
            }
            match client.infer(&req).map_err(|e| e.to_string())? {
                InferOutcome::Ok(data) => break data,
                // Explicit shedding: back off and resubmit.
                InferOutcome::Busy | InferOutcome::Timeout => {
                    shed += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                other => return Err(format!("window {frame}: {other:?}")),
            }
        };
        if send_truth {
            let truth = TruthRequest {
                model: model_id,
                h: grid as u32,
                w: grid as u32,
                data: sample.target.as_slice().to_vec(),
            };
            match client
                .truth(client.last_id(), &truth)
                .map_err(|e| e.to_string())?
            {
                Some(ack) => scores.push(ack.window_nrmse),
                None => {
                    misses += 1;
                    scores.push(f32::NAN);
                }
            }
        } else {
            scores.push(window_nrmse(&pred.data, sample.target.as_slice()));
        }
        if !interval.is_zero() {
            std::thread::sleep(interval);
        }
        Ok(())
    };
    for k in 0..windows {
        let ds = if k < shift_at { &base } else { &shifted };
        stream_one(&mut client, ds, k, k >= shift_at, &mut scores)?;
    }

    // A fine-tune takes wall-clock seconds, so the scheduled stream
    // usually ends before the promotion decision lands. Keep the
    // shifted feed alive while the daemon is still resolving the drift
    // — fine-tune in flight, or a trigger that has not produced a
    // promotion yet (a rejected candidate refills the gauge and
    // retries) — then measure a fresh tail on whichever model is live
    // afterwards. Bounded by wall clock, not by guessing how many
    // windows a fine-tune spans.
    let adapt_state = |client: &mut ServeClient| -> Result<(bool, u64, u64, u64), String> {
        let status = client.status().map_err(|e| e.to_string())?;
        let line = status
            .lines()
            .find(|l| l.starts_with(&format!("model[{model_id}]")))
            .unwrap_or("")
            .to_string();
        let num = |key: &str| -> u64 {
            line.split_whitespace()
                .find_map(|tok| tok.strip_prefix(key))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        Ok((
            line.contains("adapting=true"),
            num("drift_triggers="),
            num("promotions_ok="),
            num("promotions_rejected="),
        ))
    };
    let mut extended = 0usize;
    let ext_deadline = std::time::Instant::now() + Duration::from_secs(180);
    loop {
        let (adapting, triggers, promoted, rejected) = adapt_state(&mut client)?;
        let unresolved = adapting || (triggers > 0 && promoted == 0 && rejected < 3);
        if !unresolved || std::time::Instant::now() > ext_deadline {
            break;
        }
        stream_one(&mut client, &shifted, windows + extended, true, &mut scores)?;
        if interval.is_zero() {
            // Pace the extension even when the main stream was unpaced:
            // its purpose is to span fine-tune wall time, not bandwidth.
            std::thread::sleep(Duration::from_millis(25));
        }
        extended += 1;
    }
    if extended > 0 {
        for j in 0..8 {
            stream_one(
                &mut client,
                &shifted,
                windows + extended + j,
                true,
                &mut scores,
            )?;
        }
    }

    let mean = |xs: &[f32]| {
        let good: Vec<f32> = xs.iter().copied().filter(|v| v.is_finite()).collect();
        good.iter().sum::<f32>() / good.len().max(1) as f32
    };
    let total = scores.len();
    let pre = mean(&scores[..shift_at]);
    let peak = scores[shift_at..]
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0f32, f32::max);
    let tail = (total - shift_at).min(8);
    let fin = mean(&scores[total - tail..]);
    let recovered = fin <= pre * 1.10;
    println!("drift scenario: pre={pre:.4} peak={peak:.4} final={fin:.4} recovered={recovered}");
    println!(
        "truth stream complete: {total} windows ({shift_at} pre-shift, {extended} extended while \
         adapting), {misses} unmatched, {shed} shed-and-retried, 0 dropped"
    );

    if let Some(path) = args.get("drift-out") {
        let nums = |xs: &[f32]| {
            xs.iter()
                .map(|v| {
                    if v.is_finite() {
                        format!("{v}")
                    } else {
                        "null".to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let json = format!(
            "{{\n  \"windows\": {total},\n  \"shift_at\": {shift_at},\n  \
             \"extended\": {extended},\n  \"gain\": {gain},\n  \"hotspot_mb\": {hotspot_mb},\n  \
             \"pre\": {pre},\n  \"peak\": {peak},\n  \"final\": {fin},\n  \
             \"recovered\": {recovered},\n  \"unmatched\": {misses},\n  \"shed\": {shed},\n  \
             \"scores\": [{}]\n}}\n",
            nums(&scores)
        );
        std::fs::write(path, json)
            .map_err(|e| format!("writing drift telemetry to {path}: {e}"))?;
        println!("wrote drift telemetry to {path}");
    }
    Ok(Vec::new())
}

/// Stress driver for the serving daemon: `conns` concurrent
/// connections each submit `requests` random windows of the daemon's
/// own reported geometry, retrying explicit shedding (`BUSY`/`TIMEOUT`)
/// until served, while one extra slow-loris connection trickles a
/// partial frame and then disconnects mid-frame. Fails unless every
/// submitted request reaches a served reply — admitted work must never
/// be dropped, reloads and signals included.
fn cmd_stress(addr: &str, model: u32, conns: usize, requests: usize) -> CmdOutcome {
    use std::io::Write as _;

    let mut probe = ServeClient::connect(addr).map_err(|e| e.to_string())?;
    let info = probe.info_for(model).map_err(|e| e.to_string())?;
    let elems = (info.s * info.h * info.w) as usize;
    println!(
        "stressing {addr} model {model} (geometry [{}, {}, {}], generation {}) with \
         {conns} connections x {requests} requests + 1 slow-loris...",
        info.s, info.h, info.w, info.generation
    );

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let loris = {
        let addr = addr.to_string();
        let stop = Arc::clone(&stop);
        let (s, h, w) = (info.s, info.h, info.w);
        std::thread::spawn(move || {
            let Ok(mut stream) = std::net::TcpStream::connect(&addr) else {
                return;
            };
            let req = InferRequest {
                model,
                deadline_ms: 0,
                s,
                h,
                w,
                data: vec![0.0; (s * h * w) as usize],
            };
            let mut frame = Vec::new();
            zipnet_gan::serve::protocol::write_request(
                &mut frame,
                zipnet_gan::serve::protocol::Opcode::Infer,
                1,
                &req.encode(),
            )
            .expect("Vec write");
            // Trickle a prefix one byte at a time, hold the socket open
            // until the stress ends, then drop it mid-frame.
            for b in &frame[..64.min(frame.len() - 1)] {
                if stop.load(std::sync::atomic::Ordering::SeqCst)
                    || stream.write_all(std::slice::from_ref(b)).is_err()
                {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    let mut workers = Vec::with_capacity(conns);
    for c in 0..conns {
        let addr = addr.to_string();
        let (s, h, w) = (info.s, info.h, info.w);
        workers.push(std::thread::spawn(move || -> Result<(u64, u64), String> {
            let mut client = ServeClient::connect(&addr).map_err(|e| e.to_string())?;
            let mut rng = Rng::seed_from(0xbeef ^ c as u64);
            let (mut served, mut shed) = (0u64, 0u64);
            for r in 0..requests {
                let req = InferRequest {
                    model,
                    deadline_ms: 10_000,
                    s,
                    h,
                    w,
                    data: (0..elems).map(|_| rng.next_f32()).collect(),
                };
                let deadline = std::time::Instant::now() + Duration::from_secs(120);
                loop {
                    if std::time::Instant::now() > deadline {
                        return Err(format!("conn {c} request {r}: no reply within 120s"));
                    }
                    match client.infer(&req).map_err(|e| e.to_string())? {
                        InferOutcome::Ok(_) => {
                            served += 1;
                            break;
                        }
                        // Explicit shedding: back off and resubmit.
                        InferOutcome::Busy | InferOutcome::Timeout => {
                            shed += 1;
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        other => return Err(format!("conn {c} request {r}: {other:?}")),
                    }
                }
            }
            Ok((served, shed))
        }));
    }

    let (mut served, mut shed) = (0u64, 0u64);
    let mut failures = Vec::new();
    for worker in workers {
        match worker.join().map_err(|_| "stress worker panicked")? {
            Ok((ok, re)) => {
                served += ok;
                shed += re;
            }
            Err(e) => failures.push(e),
        }
    }
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    loris.join().map_err(|_| "slow-loris thread panicked")?;
    if !failures.is_empty() {
        return Err(format!(
            "stress dropped requests: {} failure(s), first: {}",
            failures.len(),
            failures[0]
        ));
    }
    let want = (conns * requests) as u64;
    if served != want {
        return Err(format!("stress served {served} of {want} requests"));
    }
    println!(
        "stress complete: {served}/{want} requests served ({shed} shed-and-retried), \
         0 dropped"
    );
    Ok(Vec::new())
}

/// Assembles and writes the `TelemetryReport` for a finished run: the
/// command line as run metadata (sorted for byte-stable output), the
/// training phases the subcommand produced, and the span/counter/gauge
/// snapshot accumulated by the registry.
fn write_telemetry(
    path: &str,
    cmd: &str,
    args: &Args,
    phases: Vec<PhaseReport>,
) -> Result<(), String> {
    let mut run = vec![("command".to_string(), cmd.to_string())];
    let mut keys: Vec<&String> = args.flags.keys().collect();
    keys.sort();
    for k in keys {
        if k != "telemetry" {
            run.push((k.clone(), args.flags[k].clone()));
        }
    }
    let mut report = TelemetryReport::new(run);
    report.phases = phases;
    report.attach_snapshot(&zipnet_gan::telemetry::snapshot());
    std::fs::write(path, report.to_json_string())
        .map_err(|e| format!("writing telemetry report to {path}: {e}"))?;
    println!("wrote telemetry report to {path}");
    Ok(())
}

fn usage() -> &'static str {
    "mtsr — ZipNet-GAN mobile-traffic super-resolution\n\
     \n\
     USAGE:\n\
       mtsr simulate [--grid N] [--days D] [--seed S] [--out FILE]\n\
       mtsr train    [--instance up2|up4|up10|mixture] [--grid N] [--days D]\n\
                     [--s S] [--steps N] [--gan] [--adv N] [--seed S] [--out CKPT]\n\
                     [--checkpoint-every N] [--keep K] [--resume SNAPSHOT]\n\
                     [--halt-after N]\n\
       mtsr eval     --model CKPT [--instance ...] [--grid N] [--seed S]\n\
       mtsr stream   --model CKPT [--frames N] [--instance ...] [--grid N] [--seed S]\n\
       mtsr serve    (--model CKPT | --models NAME=CKPT[,NAME=CKPT...])\n\
                     [--addr HOST:PORT] [--batch B] [--workers W] [--queue N]\n\
                     [--deadline-ms MS] [--linger-ms MS] [--max-conns N]\n\
                     [--fuse exact|folded|quantized] [--exact]\n\
                     [--adapt] [--drift-threshold T] [--drift-window N]\n\
                     [--adapt-pairs N] [--adapt-holdout N] [--adapt-steps N]\n\
                     [--window N] [--stride N] [--instance ...] [--grid N] [--seed S]\n\
       mtsr client   [--addr HOST:PORT] [--model-id N] (--status | --shutdown |\n\
                     --reload [CKPT] | --stress CONNS [--requests R] |\n\
                     --truth N [--shift-at K] [--shift-gain G] [--shift-hotspot MB]\n\
                     [--interval-ms MS]
                     [--drift-out REPORT.json] | [--frames N]\n\
                     [--window N] [--stride N] [--instance ...] [--grid N] [--seed S])\n\
     \n\
     Serving: `serve` compiles each checkpoint into a batched inference plan\n\
     and answers low-res windows over a length-prefixed TCP protocol. A\n\
     single epoll/poll event loop fronts thousands of connections with a\n\
     fixed thread count; a shared batcher pool routes requests to the model\n\
     id in each INFER header, with BUSY backpressure when the bounded queue\n\
     is full, per-request deadlines and graceful drain on SIGTERM/SHUTDOWN.\n\
     Hot reload: `client --reload [CKPT]` (or SIGHUP for every model) swaps\n\
     a freshly planned checkpoint atomically — in-flight batches finish on\n\
     the old plan, replies are stamped with the plan generation, and each\n\
     generation stays bit-identical to offline inference under its plan.\n\
     `client --frames N` reconstructs full test frames remotely (bit-\n\
     identical to local inference when the policies match); `--status`\n\
     prints global and per-model counters plus lifetime and since-last-\n\
     STATUS latency percentiles; `--stress CONNS` hammers the daemon and\n\
     fails on any dropped request.\n\
     \n\
     Online adaptation: with `serve --adapt`, clients follow each served\n\
     prediction with a TRUTH frame under the same request id; the daemon\n\
     scores every pair into a rolling per-model NRMSE gauge (STATUS:\n\
     drift=). Past --drift-threshold, a sidecar thread resumes the\n\
     recorded training container, fine-tunes --adapt-steps on the last\n\
     --adapt-pairs buffered pairs, and hot-promotes the result through\n\
     the RELOAD path — only if it beats the live model on the freshest\n\
     --adapt-holdout pairs (else promotions_rejected counts it and the\n\
     live plan is untouched). `client --truth N` drives the whole drift\n\
     scenario: healthy windows, then a regime-shifted workload from\n\
     --shift-at onward, reporting pre/peak/final NRMSE and recovery.\n\
     \n\
     Checkpointing: --out receives a crash-safe training container (weights,\n\
     Adam moments, RNG and schedule state). --checkpoint-every N also writes\n\
     rolling snapshots CKPT.NNNNNN (newest --keep kept); after a crash,\n\
     --resume CKPT.NNNNNN continues bit-identically to an uninterrupted run\n\
     when given the same data/plan flags. eval and stream accept both\n\
     containers and legacy weights-only checkpoints.\n\
     \n\
     Every subcommand also accepts --telemetry REPORT.json: enables the\n\
     metrics registry and writes a TelemetryReport (per-epoch losses,\n\
     per-layer and kernel span timings) when the command succeeds.\n\
     \n\
     The same --seed regenerates identical data across subcommands."
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&argv[1..]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let telemetry_path = match args.get("telemetry") {
        // A bare `--telemetry` parses as the boolean value "true".
        Some("true") => {
            eprintln!("error: --telemetry requires a report path (e.g. --telemetry report.json)");
            return ExitCode::FAILURE;
        }
        p => p.map(str::to_string),
    };
    if telemetry_path.is_some() {
        zipnet_gan::telemetry::set_enabled(true);
        zipnet_gan::telemetry::reset();
    }
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(&args),
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "stream" => cmd_stream(&args),
        "serve" => cmd_serve(&args),
        "client" => cmd_client(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(Vec::new())
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{}", usage())),
    };
    let result = result.and_then(|phases| {
        if let Some(path) = &telemetry_path {
            write_telemetry(path, &cmd, &args, phases)?;
        }
        Ok(())
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
