//! # zipnet-gan — workspace façade
//!
//! One-stop entry point for the ZipNet-GAN reproduction (Zhang, Ouyang &
//! Patras, ACM CoNEXT 2017). Re-exports the member crates and offers a
//! [`prelude`] so examples and downstream users can write
//! `use zipnet_gan::prelude::*;`.
//!
//! Crate map (see `DESIGN.md` for the full inventory):
//!
//! * [`tensor`] — f32 tensors, GEMM, conv primitives, deterministic RNG
//! * [`nn`] — layers, losses, optimizers with explicit backprop
//! * [`traffic`] — synthetic Milan-like traffic, probes, datasets
//! * [`metrics`] — NRMSE / PSNR / SSIM (paper Eqs. 11–13)
//! * [`baselines`] — Uniform, Bicubic, SC, A+, SRCNN comparators
//! * [`core`] — ZipNet generator, discriminator, GAN trainer, pipeline,
//!   streaming inference and anomaly detection
//! * [`telemetry`] — metrics registry, scoped timers and the
//!   `TelemetryReport` JSON schema (`mtsr --telemetry <path>`)
//! * [`serve`] — concurrent TCP inference daemon with dynamic batching,
//!   backpressure and graceful drain (`mtsr serve` / `mtsr client`)
//!
//! A command-line front-end ships as the `mtsr` binary
//! (`cargo run --release --bin mtsr -- help`): deterministic
//! simulate / train / eval / stream / serve / client subcommands over
//! the same API.

pub use mtsr_baselines as baselines;
pub use mtsr_metrics as metrics;
pub use mtsr_nn as nn;
pub use mtsr_serve as serve;
pub use mtsr_telemetry as telemetry;
pub use mtsr_tensor as tensor;
pub use mtsr_traffic as traffic;
pub use zipnet_core as core;

/// Convenient glob-import surface for examples and quick starts.
pub mod prelude {
    pub use mtsr_baselines::{AplusSr, BicubicSr, SparseCodingSr, SrcnnSr, UniformSr};
    pub use mtsr_metrics::{nrmse, psnr, ssim};
    pub use mtsr_tensor::{Rng, Shape, Tensor};
    pub use mtsr_traffic::{
        AugmentConfig, CityConfig, Dataset, DatasetConfig, MilanGenerator, MtsrInstance,
        ProbeLayout,
    };
    pub use zipnet_core::{
        Discriminator, GanTrainer, GanTrainingConfig, MtsrModel, MtsrPipeline, ZipNet, ZipNetConfig,
    };
}
